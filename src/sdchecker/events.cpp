#include "sdchecker/events.hpp"

namespace sdc::checker {

std::string_view event_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAppSubmitted:
      return "SUBMITTED";
    case EventKind::kAppAccepted:
      return "ACCEPTED";
    case EventKind::kAttemptRegistered:
      return "APT_REGISTERED";
    case EventKind::kContainerAllocated:
      return "ALLOCATED";
    case EventKind::kContainerAcquired:
      return "ACQUIRED";
    case EventKind::kNmLocalizing:
      return "LOCALIZING";
    case EventKind::kNmScheduled:
      return "SCHEDULED";
    case EventKind::kNmRunning:
      return "RUNNING";
    case EventKind::kDriverFirstLog:
      return "DRV_FIRST_LOG";
    case EventKind::kDriverRegister:
      return "DRV_REGISTER";
    case EventKind::kStartAllo:
      return "START_ALLO";
    case EventKind::kEndAllo:
      return "END_ALLO";
    case EventKind::kExecutorFirstLog:
      return "EXE_FIRST_LOG";
    case EventKind::kExecutorFirstTask:
      return "FIRST_TASK";
    case EventKind::kRmContainerRunning:
      return "RM_RUNNING";
    case EventKind::kRmContainerCompleted:
      return "RM_COMPLETED";
    case EventKind::kRmContainerReleased:
      return "RM_RELEASED";
    case EventKind::kNmExited:
      return "NM_EXITED";
    case EventKind::kNmFailed:
      return "NM_FAILED";
    case EventKind::kAppFinished:
      return "APP_FINISHED";
  }
  return "?";
}

std::int32_t table1_number(EventKind kind) {
  const auto raw = static_cast<std::int32_t>(kind);
  return raw >= 1 && raw <= 14 ? raw : 0;
}

namespace {

constexpr EventKind kAllEventKinds[] = {
    EventKind::kAppSubmitted,        EventKind::kAppAccepted,
    EventKind::kAttemptRegistered,   EventKind::kContainerAllocated,
    EventKind::kContainerAcquired,   EventKind::kNmLocalizing,
    EventKind::kNmScheduled,         EventKind::kNmRunning,
    EventKind::kDriverFirstLog,      EventKind::kDriverRegister,
    EventKind::kStartAllo,           EventKind::kEndAllo,
    EventKind::kExecutorFirstLog,    EventKind::kExecutorFirstTask,
    EventKind::kRmContainerRunning,  EventKind::kRmContainerCompleted,
    EventKind::kRmContainerReleased, EventKind::kNmExited,
    EventKind::kAppFinished,         EventKind::kNmFailed,
};

}  // namespace

std::span<const EventKind> all_event_kinds() { return kAllEventKinds; }

std::optional<EventKind> event_from_name(std::string_view name) {
  for (const EventKind kind : kAllEventKinds) {
    if (event_name(kind) == name) return kind;
  }
  return std::nullopt;
}

bool is_container_event(EventKind kind) {
  switch (kind) {
    case EventKind::kContainerAllocated:
    case EventKind::kContainerAcquired:
    case EventKind::kNmLocalizing:
    case EventKind::kNmScheduled:
    case EventKind::kNmRunning:
    case EventKind::kExecutorFirstLog:
    case EventKind::kExecutorFirstTask:
    case EventKind::kRmContainerRunning:
    case EventKind::kRmContainerCompleted:
    case EventKind::kRmContainerReleased:
    case EventKind::kNmExited:
    case EventKind::kNmFailed:
      return true;
    case EventKind::kAppSubmitted:
    case EventKind::kAppAccepted:
    case EventKind::kAttemptRegistered:
    case EventKind::kDriverFirstLog:
    case EventKind::kDriverRegister:
    case EventKind::kStartAllo:
    case EventKind::kEndAllo:
    case EventKind::kAppFinished:
      return false;
  }
  return false;
}

}  // namespace sdc::checker
