// Aggregation and rendering of decomposition results across many
// applications: the percentiles, CDFs and standard deviations the paper's
// figures plot, plus text/CSV renderers used by the benches and examples.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sdchecker/decompose.hpp"

namespace sdc::checker {

/// Sample sets (in seconds) per delay metric, filled from per-app
/// decompositions.
struct AggregateReport {
  SampleSet total;
  SampleSet am;
  SampleSet cf;
  SampleSet cl;
  SampleSet cl_minus_cf;
  SampleSet driver;
  SampleSet executor;
  SampleSet in_app;
  SampleSet out_app;
  SampleSet alloc;
  SampleSet acquisition;   // per container
  SampleSet localization;  // per container
  SampleSet queuing;       // per container
  SampleSet launching;     // per container
  SampleSet exec_idle;     // per container (Fig. 10 executor idleness)

  /// Folds one application's decomposition in.
  void add(const Delays& delays);

  /// Number of applications folded in.
  [[nodiscard]] std::size_t app_count() const noexcept { return apps_; }

  /// Fixed-width text table: metric | n | median | p95 | mean | stddev.
  [[nodiscard]] std::string render_text() const;

  /// CSV with the same columns.
  [[nodiscard]] std::string render_csv() const;

  /// Named access to each metric for table-driven consumers.
  [[nodiscard]] std::vector<std::pair<std::string, const SampleSet*>>
  metrics() const;

 private:
  std::size_t apps_ = 0;
};

}  // namespace sdc::checker
