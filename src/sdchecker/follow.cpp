#include "sdchecker/follow.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <utility>

#include "common/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/miner.hpp"

namespace sdc::checker {
namespace {

using logging::Diagnostic;
using logging::DiagnosticKind;

struct FollowCounters {
  obs::Counter& polls;
  obs::Counter& bytes;
  obs::Counter& streams;
  obs::Counter& rotations;
  obs::Counter& apps_retired;
  static const FollowCounters& get() {
    static const FollowCounters counters{
        obs::catalog_counter(obs::metric::kFollowPolls),
        obs::catalog_counter(obs::metric::kFollowBytes),
        obs::catalog_counter(obs::metric::kFollowStreams),
        obs::catalog_counter(obs::metric::kFollowRotations),
        obs::catalog_counter(obs::metric::kFollowAppsRetired)};
    return counters;
  }
};

/// (dev, inode) folded into one map key; collisions would need two
/// filesystems mounted inside one log directory.
std::uint64_t inode_key(const struct ::stat& st) {
  return (static_cast<std::uint64_t>(st.st_dev) << 32) ^
         static_cast<std::uint64_t>(st.st_ino);
}

/// Rotation-order rank of a physical name within its family: oldest
/// (highest suffix) first, the unsuffixed base — the live segment —
/// last.  Mirrors the sort in the batch reader's `group_rotations`.
struct FamilyRank {
  bool is_base = true;
  unsigned long index = 0;
};
FamilyRank family_rank(const std::string& name) {
  if (const auto rotation = split_rotation_suffix(name)) {
    return FamilyRank{false, rotation->index};
  }
  return FamilyRank{true, 0};
}

}  // namespace

FollowService::FollowService(std::filesystem::path dir, FollowOptions options)
    : dir_(std::move(dir)), options_(options), analyzer_(options.miner) {}

void FollowService::flush_partial(Tail& tail) {
  if (tail.partial.empty()) return;
  analyzer_.feed(tail.logical, tail.partial);
  tail.partial.clear();
}

bool FollowService::drain_tail(Tail& tail, PollStats& stats) {
  const std::filesystem::path path = dir_ / tail.physical;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!std::filesystem::exists(path)) {
      // Renamed away between scan and open (mid-rotation race): the
      // inode resurfaces under its rotated name next poll and is read
      // from the same offset there — one handoff, no diagnostic.
      return false;
    }
    // Genuinely unreadable.  One diagnostic per stream, worded exactly
    // as the batch reader's LogView::from_file failure, never repeated.
    unreadable_.emplace(
        tail.physical,
        Diagnostic{DiagnosticKind::kUnreadableFile, tail.physical, 0, 1,
                   "LogView: cannot read " + path.string()});
    return true;
  }
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) return true;
  auto size = static_cast<std::uintmax_t>(end);
  if (size < tail.offset) {
    // Truncated in place under us (copytruncate-style rotation): the
    // bytes we already fed are gone; restart this segment from zero.
    tail.offset = 0;
    tail.partial.clear();
  }
  if (size > tail.offset) {
    const std::size_t added = static_cast<std::size_t>(size - tail.offset);
    std::string chunk(added, '\0');
    in.seekg(static_cast<std::streamoff>(tail.offset));
    in.read(chunk.data(), static_cast<std::streamsize>(added));
    const auto got = static_cast<std::size_t>(in.gcount());
    chunk.resize(got);
    tail.offset += got;
    stats.bytes_read += got;

    // Feed every complete line; the remainder waits for its newline.
    tail.partial += chunk;
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = tail.partial.find('\n', start);
      if (nl == std::string::npos) break;
      analyzer_.feed(tail.logical, std::string_view(tail.partial)
                                       .substr(start, nl - start));
      ++stats.lines_fed;
      start = nl + 1;
    }
    tail.partial.erase(0, start);
  }
  if (!tail.is_base) {
    // A rotated segment is frozen; its unterminated final line is a
    // whole line to the batch reader, so feed it now — before any line
    // of the newer segment that logically follows it.
    if (!tail.partial.empty()) ++stats.lines_fed;
    flush_partial(tail);
  }
  return true;
}

PollStats FollowService::poll_once() {
  const auto span = obs::Tracer::global().span("follow.poll");
  const FollowCounters& counters = FollowCounters::get();
  PollStats stats;
  ++polls_;
  analyzer_.advance_tick();

  // Pass 1: rescan the directory and reconcile names against inodes.
  std::set<std::uint64_t> seen;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    struct ::stat st{};
    if (::stat(entry.path().c_str(), &st) != 0) continue;  // vanished
    const std::uint64_t key = inode_key(st);
    seen.insert(key);
    const std::string name = entry.path().filename().string();
    const auto it = tails_.find(key);
    if (it == tails_.end()) {
      Tail tail;
      tail.physical = name;
      const auto rotation = split_rotation_suffix(name);
      tail.logical = rotation ? rotation->base : name;
      tail.is_base = !rotation;
      tails_.emplace(key, std::move(tail));
      ++stats.new_streams;
      ++streams_seen_;
      continue;
    }
    if (it->second.physical != name) {
      // The inode moved to a new name: rename-based rotation handoff.
      // The logical stream identity is unchanged; remaining bytes are
      // read from the rotated name, from the same offset.
      it->second.physical = name;
      it->second.is_base = !split_rotation_suffix(name).has_value();
      ++stats.rotations;
      ++rotations_;
    }
  }

  // Drop tails whose inode left the directory (rotation pruned the
  // oldest segment).  Every byte it held was already fed.  A tail the
  // scan missed (renamed mid-iteration) is re-checked by name so a
  // transient miss does not flush-and-recreate it with a reset offset.
  for (auto it = tails_.begin(); it != tails_.end();) {
    if (seen.contains(it->first)) {
      ++it;
      continue;
    }
    struct ::stat st{};
    if (::stat((dir_ / it->second.physical).c_str(), &st) != 0 ||
        inode_key(st) != it->first) {
      flush_partial(it->second);
      it = tails_.erase(it);
    } else {
      ++it;
    }
  }

  // Pass 2: drain in rotation order — within a family the older
  // (suffixed) segments flush before the live base, so a handoff poll
  // feeds the rotated remainder ahead of the fresh segment's bytes,
  // exactly the batch reassembly order.
  std::vector<Tail*> order;
  order.reserve(tails_.size());
  for (auto& [key, tail] : tails_) order.push_back(&tail);
  std::sort(order.begin(), order.end(), [](const Tail* a, const Tail* b) {
    if (a->logical != b->logical) return a->logical < b->logical;
    const FamilyRank ra = family_rank(a->physical);
    const FamilyRank rb = family_rank(b->physical);
    if (ra.is_base != rb.is_base) return rb.is_base;
    return ra.index > rb.index;
  });
  for (Tail* tail : order) drain_tail(*tail, stats);

  if (options_.retire) {
    stats.apps_retired = analyzer_.retire_terminal(options_.retire_quiet_polls);
  }
  quiescent_ = stats.bytes_read == 0 && stats.new_streams == 0 &&
               stats.rotations == 0;
  bytes_read_ += stats.bytes_read;

  counters.polls.add(1);
  counters.bytes.add(stats.bytes_read);
  counters.streams.add(stats.new_streams);
  counters.rotations.add(stats.rotations);
  counters.apps_retired.add(stats.apps_retired);
  return stats;
}

void FollowService::finish() {
  // The live segments' unterminated last lines: the batch reader counts
  // them as lines (no trailing newline), so the drained stream must too.
  for (auto& [key, tail] : tails_) flush_partial(tail);
  finished_ = true;
}

AnalysisResult FollowService::snapshot() const {
  AnalysisResult result = analyzer_.snapshot(options_.analyze_shards);

  // Synthesize the diagnostics the batch directory reader would emit on
  // the directory as it stands now.  Rotated families reassembled by the
  // tailer correspond 1:1 to batch `group_rotations` reassemblies.
  std::map<std::string, std::vector<std::string>> families;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (unreadable_.contains(name)) continue;  // excluded from the view
    const auto rotation = split_rotation_suffix(name);
    families[rotation ? rotation->base : name].push_back(name);
  }
  for (auto& [base, members] : families) {
    if (members.size() == 1 && members.front() == base) continue;
    std::sort(members.begin(), members.end(),
              [&base](const std::string& a, const std::string& b) {
                const bool a_base = a == base;
                const bool b_base = b == base;
                if (a_base != b_base) return b_base;
                return family_rank(a).index > family_rank(b).index;
              });
    std::string segment_list;
    for (const std::string& member : members) {
      if (!segment_list.empty()) segment_list += ", ";
      segment_list += member;
    }
    result.diagnostics.push_back(
        Diagnostic{DiagnosticKind::kRotationGap, base, 0, members.size(),
                   "reassembled " + std::to_string(members.size()) +
                       " rotated segments: " + segment_list});
  }
  for (const auto& [name, diagnostic] : unreadable_) {
    result.diagnostics.push_back(diagnostic);
  }
  result.diag_counts = logging::count_diagnostics(result.diagnostics);
  logging::sort_diagnostics(result.diagnostics);
  return result;
}

std::string FollowService::watch_record() const {
  json::Writer w;
  w.begin_object();
  w.field("poll", static_cast<std::int64_t>(polls_));
  w.field("quiescent", quiescent_);
  w.field("bytes_read", static_cast<std::int64_t>(bytes_read_));
  w.field("streams", static_cast<std::int64_t>(streams_seen_));
  w.field("rotations", static_cast<std::int64_t>(rotations_));
  w.field("apps_resident",
          static_cast<std::int64_t>(analyzer_.apps_resident()));
  w.field("apps_retired", static_cast<std::int64_t>(analyzer_.apps_retired()));
  w.key("analysis").raw(analysis_json(snapshot()));
  w.key("metrics").raw(obs::MetricsRegistry::global().snapshot().to_json());
  w.end_object();
  return w.take();
}

void WatchCheckResult::fail(std::string message) {
  ok = false;
  errors.push_back(std::move(message));
}

WatchCheckResult check_watch_json(std::string_view line) {
  WatchCheckResult result;
  obs::JsonValue root;
  std::string error;
  if (!obs::parse_json(line, root, error)) {
    result.fail("parse error: " + error);
    return result;
  }
  const obs::JsonObject* top = root.object();
  if (top == nullptr) {
    result.fail("top level is not an object");
    return result;
  }
  const auto require_number = [&](const char* key) {
    const obs::JsonValue* value = obs::json_find(*top, key);
    if (value == nullptr || value->number() == nullptr) {
      result.fail(std::string("missing numeric \"") + key + "\"");
    }
  };
  require_number("poll");
  require_number("bytes_read");
  require_number("streams");
  require_number("rotations");
  require_number("apps_resident");
  require_number("apps_retired");
  const obs::JsonValue* quiescent = obs::json_find(*top, "quiescent");
  if (quiescent == nullptr || quiescent->boolean() == nullptr) {
    result.fail("missing boolean \"quiescent\"");
  }
  const obs::JsonValue* analysis = obs::json_find(*top, "analysis");
  const obs::JsonObject* analysis_object =
      analysis != nullptr ? analysis->object() : nullptr;
  if (analysis_object == nullptr) {
    result.fail("missing \"analysis\" object");
  } else {
    const obs::JsonValue* summary = obs::json_find(*analysis_object, "summary");
    if (summary == nullptr || summary->object() == nullptr) {
      result.fail("\"analysis\" without \"summary\" object");
    }
  }
  const obs::JsonValue* metrics = obs::json_find(*top, "metrics");
  const obs::JsonObject* metrics_object =
      metrics != nullptr ? metrics->object() : nullptr;
  if (metrics_object == nullptr) {
    result.fail("missing \"metrics\" object");
  } else {
    const obs::JsonValue* metric_counters =
        obs::json_find(*metrics_object, "counters");
    if (metric_counters == nullptr || metric_counters->object() == nullptr) {
      result.fail("\"metrics\" without \"counters\" object");
    }
  }
  return result;
}

}  // namespace sdc::checker
