#include "sdchecker/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace sdc::checker {

std::string render_timeline(const AppTimeline& timeline) {
  struct Row {
    std::int64_t ts;
    std::string entity;
    EventKind kind;
  };
  std::vector<Row> rows;
  for (const auto& [kind, ts] : timeline.first_ts) {
    rows.push_back(Row{ts, "app", kind});
  }
  for (const auto& [cid, container] : timeline.containers) {
    for (const auto& [kind, ts] : container.first_ts) {
      rows.push_back(Row{ts, cid.str(), kind});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.entity < b.entity;
  });
  std::string out = timeline.app.str() + "\n";
  if (rows.empty()) return out;
  const std::int64_t origin = rows.front().ts;
  char buf[160];
  for (const Row& row : rows) {
    const std::int32_t num = table1_number(row.kind);
    if (num > 0) {
      std::snprintf(buf, sizeof(buf), "  %+9.3fs  %-40s %s (%d)\n",
                    static_cast<double>(row.ts - origin) / 1000.0,
                    row.entity.c_str(),
                    std::string(event_name(row.kind)).c_str(), num);
    } else {
      std::snprintf(buf, sizeof(buf), "  %+9.3fs  %-40s %s\n",
                    static_cast<double>(row.ts - origin) / 1000.0,
                    row.entity.c_str(),
                    std::string(event_name(row.kind)).c_str());
    }
    out += buf;
  }
  return out;
}

}  // namespace sdc::checker
