#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>

namespace sdc::workloads {

MrAppConfig make_dfsio(std::int32_t num_maps, SimDuration duration) {
  MrAppConfig config;
  config.name = "dfsio-write";
  config.num_maps = num_maps;
  config.num_reduces = 0;
  config.task_resource = {1, 1024};
  config.map_duration_median = duration;
  config.map_duration_sigma = 0.10;
  config.io_units_per_map = 1.0;
  return config;
}

spark::SparkAppConfig make_kmeans(SimDuration duration) {
  spark::SparkAppConfig config;
  config.name = "hibench-kmeans";
  config.kind = spark::AppKind::kKmeans;
  config.num_executors = 4;
  // Nominal YARN shape; physical CPU pressure is modelled via cpu units
  // because the paper oversubscribes vcores (4 executors x 16 vcores).
  config.executor_resource = {2, 2048};
  config.input_mb = 1024;
  config.files_opened = 1;
  config.execution_median = duration;
  config.execution_sigma = 0.08;
  config.scan_io_units = 0.0;
  config.cpu_units_while_running = 1.0;
  return config;
}

MrAppConfig make_mr_wordcount_for_load(double load_fraction,
                                       std::int32_t cluster_vcores,
                                       SimDuration map_duration) {
  MrAppConfig config;
  config.name = "mr-wordcount-load";
  config.task_resource = {1, 1024};
  const double target = std::clamp(load_fraction, 0.0, 1.0) *
                        static_cast<double>(cluster_vcores);
  config.num_maps = std::max(1, static_cast<std::int32_t>(std::lround(target)));
  config.num_reduces = 0;
  config.map_duration_median = map_duration;
  config.map_duration_sigma = 0.25;
  return config;
}

}  // namespace sdc::workloads
