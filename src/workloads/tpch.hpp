// TPC-H on Spark-SQL workload model (paper §IV-A: Hive-populated TPC-H
// tables in HDFS, queried through Spark-SQL).
//
// Each of the 22 queries carries a relative complexity factor (join
// depth, aggregation width); execution time is
//     complexity * (fixed query cost + input scan time)
// with the scan parallelized across executors.  Every query opens the 8
// TPC-H tables during user initialization — the Fig. 11 "8 opened files"
// that make Spark-SQL's executor delay longer than wordcount's.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "spark/app_config.hpp"

namespace sdc::workloads {

/// Execution-model constants shared by the query builders.
struct ExecutionModelConfig {
  /// Per-executor effective HDFS scan bandwidth, MB/s.
  double scan_bw_mbps_per_executor = 40.0;
  /// Fixed (input-independent) query cost median (shuffles, aggregation,
  /// result collection — present even for tiny inputs).
  SimDuration base_query_median = micros(6'500'000);
  /// Lognormal sigma of the sampled execution time.
  double execution_sigma = 0.45;
  /// Cluster I/O *control* units per GB of input while the scan is in
  /// flight (Fig. 5 self-interference coupling on in-application paths).
  double io_units_per_input_gb = 0.30;
  /// I/O *transfer* units per GB of input (token: replicated reads barely
  /// collide with localization downloads).
  double transfer_units_per_input_gb = 0.015;
};

inline constexpr std::int32_t kTpchQueryCount = 22;
inline constexpr std::int32_t kTpchTableCount = 8;

/// Relative runtime factor of TPC-H query `q` (1-based, 1..22).
[[nodiscard]] double tpch_query_complexity(std::int32_t q);

/// Builds a Spark-SQL TPC-H application config.  `query` is 1..22;
/// `input_mb` the dataset size; the remaining structural fields
/// (executors, docker, ...) keep their defaults and can be adjusted by
/// the caller afterwards.  `rng` only picks nothing here — execution time
/// is sampled later by the driver from the filled-in median/sigma.
[[nodiscard]] spark::SparkAppConfig make_tpch_query(
    std::int32_t query, double input_mb, std::int32_t num_executors,
    const ExecutionModelConfig& model = {});

/// Builds a Spark wordcount application config (1 opened file).
[[nodiscard]] spark::SparkAppConfig make_spark_wordcount(
    double input_mb, std::int32_t num_executors,
    const ExecutionModelConfig& model = {});

}  // namespace sdc::workloads
