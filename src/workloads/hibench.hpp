// HiBench-style workload catalog (the paper draws Kmeans from HiBench
// [24]).  Each builder produces a SparkAppConfig whose structural knobs —
// opened files, stage depth, executor shape, scan intensity — match the
// benchmark's published character, so mixed-workload scenarios exercise
// the scheduler the way a real shared cluster does.
#pragma once

#include <cstdint>

#include "spark/app_config.hpp"
#include "workloads/tpch.hpp"

namespace sdc::workloads {

/// TeraSort: single huge input, shallow 2-stage DAG, scan-dominated.
[[nodiscard]] spark::SparkAppConfig make_terasort(
    double input_mb, std::int32_t num_executors,
    const ExecutionModelConfig& model = {});

/// PageRank: one edge-list input, deeply iterative DAG (many stages),
/// CPU-leaning execution.
[[nodiscard]] spark::SparkAppConfig make_pagerank(
    double input_mb, std::int32_t num_executors, std::int32_t iterations = 8,
    const ExecutionModelConfig& model = {});

/// Naive Bayes training: several model/feature files opened at init
/// (between wordcount's 1 and TPC-H's 8), moderate depth.
[[nodiscard]] spark::SparkAppConfig make_bayes(
    double input_mb, std::int32_t num_executors,
    const ExecutionModelConfig& model = {});

/// Short interactive aggregation ("scan" in HiBench SQL): tiny query on
/// a pre-partitioned table — the "tiny and short" job class the paper's
/// introduction motivates.
[[nodiscard]] spark::SparkAppConfig make_interactive_scan(
    double input_mb, std::int32_t num_executors,
    const ExecutionModelConfig& model = {});

}  // namespace sdc::workloads
