#include "workloads/tpch.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sdc::workloads {
namespace {

/// Rough relative weights of the 22 TPC-H queries (multi-join analytics
/// like Q7/Q8/Q9 are the heavy tail; selective single-table scans like
/// Q1/Q6 are the cheap end).
constexpr double kComplexity[kTpchQueryCount] = {
    0.80, 0.55, 0.95, 0.70, 1.05, 0.45, 1.30, 1.35, 1.60, 0.90, 0.60,
    0.75, 0.85, 0.65, 0.70, 0.80, 1.10, 1.25, 0.95, 1.00, 1.40, 0.85,
};

SimDuration scaled(SimDuration d, double f) {
  return static_cast<SimDuration>(static_cast<double>(d) * f);
}

void fill_execution_model(spark::SparkAppConfig& config, double complexity,
                          const ExecutionModelConfig& model) {
  const double scan_bw = model.scan_bw_mbps_per_executor *
                         static_cast<double>(std::max(1, config.num_executors));
  const double scan_secs = config.input_mb / scan_bw;
  config.scan_duration = static_cast<SimDuration>(scan_secs * 1e6);
  config.execution_median =
      scaled(model.base_query_median + config.scan_duration, complexity);
  config.execution_sigma = model.execution_sigma;
  config.scan_io_units =
      model.io_units_per_input_gb * config.input_mb / 1024.0;
  config.scan_transfer_units =
      model.transfer_units_per_input_gb * config.input_mb / 1024.0;
  // Multi-join queries run deeper stage DAGs (scan -> join -> aggregate).
  config.num_stages = complexity > 1.0 ? 4 : 3;
}

}  // namespace

double tpch_query_complexity(std::int32_t q) {
  if (q < 1 || q > kTpchQueryCount) {
    throw std::out_of_range("TPC-H query index must be 1..22, got " +
                            std::to_string(q));
  }
  return kComplexity[q - 1];
}

spark::SparkAppConfig make_tpch_query(std::int32_t query, double input_mb,
                                      std::int32_t num_executors,
                                      const ExecutionModelConfig& model) {
  spark::SparkAppConfig config;
  config.name = "tpch-q" + std::to_string(query);
  config.kind = spark::AppKind::kSparkSql;
  config.num_executors = num_executors;
  config.input_mb = input_mb;
  config.files_opened = kTpchTableCount;
  fill_execution_model(config, tpch_query_complexity(query), model);
  return config;
}

spark::SparkAppConfig make_spark_wordcount(double input_mb,
                                           std::int32_t num_executors,
                                           const ExecutionModelConfig& model) {
  spark::SparkAppConfig config;
  config.name = "spark-wordcount";
  config.kind = spark::AppKind::kWordCount;
  config.num_executors = num_executors;
  config.input_mb = input_mb;
  config.files_opened = 1;
  fill_execution_model(config, /*complexity=*/0.6, model);
  config.num_stages = 2;  // map + reduce
  return config;
}

}  // namespace sdc::workloads
