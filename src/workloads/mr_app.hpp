// A simulated MapReduce application on YARN.
//
// Used three ways in the evaluation:
//   * MapReduce wordcount as the cluster-load generator (its map fan-out
//     quickly occupies the cluster — Table II, Fig. 7-b/c),
//   * dfsIO as the I/O interference generator (each map writes 20 GB to
//     HDFS, adding one I/O unit while it runs — Fig. 12),
//   * the mrm / mrsm / mrsr instance types of the launching-delay study
//     (Fig. 9-a).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "logging/logger.hpp"
#include "spark/app_config.hpp"
#include "yarn/resource_manager.hpp"

namespace sdc::workloads {

struct MrAppConfig {
  std::string name = "mr-wordcount";
  std::int32_t num_maps = 8;
  std::int32_t num_reduces = 1;
  /// HDFS input name; maps prefer nodes holding its block replicas.
  /// Empty = derived from the app name.
  std::string input_file;
  cluster::Resource task_resource{1, 2048};
  SimDuration map_duration_median = seconds(20);
  double map_duration_sigma = 0.30;
  SimDuration reduce_duration_median = seconds(10);
  double reduce_duration_sigma = 0.30;
  /// Cluster I/O units each running map exerts (1.0 for dfsIO).
  double io_units_per_map = 0.0;
  double am_localization_mb = 200.0;
  double task_localization_mb = 200.0;
  SimDuration am_heartbeat = millis(1000);
  bool docker = false;
  std::function<void(const spark::JobRecord&)> on_complete;
};

/// The MR AppMaster plus its task bookkeeping.  Tasks request containers
/// in one batch (maps + reduces), run for sampled durations and exit.
class MrApp final : public yarn::AmProtocol {
 public:
  MrApp(cluster::Cluster& cluster, yarn::ResourceManager& rm,
        logging::LogBundle& logs, MrAppConfig config, ApplicationId app,
        ContainerId am_container, NodeId node, SimTime first_log_time,
        Rng rng);

  MrApp(const MrApp&) = delete;
  MrApp& operator=(const MrApp&) = delete;

  void on_containers_acquired(
      const std::vector<yarn::Allocation>& acquired) override;

  [[nodiscard]] const ApplicationId& app() const noexcept { return app_; }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::int32_t tasks_completed() const noexcept {
    return tasks_completed_;
  }

 private:
  void register_with_rm();
  void launch_task(const yarn::Allocation& allocation, bool is_map,
                   std::int32_t task_index);
  void on_task_started(const yarn::Allocation& allocation, bool is_map,
                       std::int32_t task_index, SimTime at);
  void on_task_done(const yarn::Allocation& allocation);
  void maybe_finish();

  cluster::Cluster& cluster_;
  yarn::ResourceManager& rm_;
  logging::LogBundle& logs_;
  MrAppConfig config_;
  ApplicationId app_;
  ContainerId am_container_;
  NodeId node_;
  logging::Logger logger_;
  Rng rng_;
  std::vector<std::unique_ptr<logging::Logger>> task_loggers_;
  std::int32_t maps_granted_ = 0;
  std::int32_t reduces_granted_ = 0;
  std::int32_t tasks_completed_ = 0;
  std::int32_t tasks_total_ = 0;
  SimTime first_task_time_ = kNoTime;
  bool finished_ = false;
  spark::JobRecord record_;
};

}  // namespace sdc::workloads
