#include "workloads/mr_app.hpp"

#include <cstdio>

#include "common/log_contract.hpp"
#include "workloads/log_contract.hpp"

namespace sdc::workloads {
namespace {

using contract::render_template;

std::string mr_am_stream(const ApplicationId& app) {
  return "mram-" + app.str() + ".log";
}

std::string mr_task_stream(const ContainerId& id) {
  return "mrtask-" + id.str() + ".log";
}

std::string attempt_id(const ApplicationId& app) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "appattempt_%lld_%04d_000001",
                static_cast<long long>(app.cluster_ts), app.id);
  return buf;
}

}  // namespace

MrApp::MrApp(cluster::Cluster& cluster, yarn::ResourceManager& rm,
             logging::LogBundle& logs, MrAppConfig config, ApplicationId app,
             ContainerId am_container, NodeId node, SimTime first_log_time,
             Rng rng)
    : cluster_(cluster),
      rm_(rm),
      logs_(logs),
      config_(std::move(config)),
      app_(app),
      am_container_(am_container),
      node_(node),
      logger_(&logs, mr_am_stream(app), cluster.config().epoch_base_ms),
      rng_(rng) {
  tasks_total_ = config_.num_maps + config_.num_reduces;
  record_.app = app_;
  record_.name = config_.name;
  record_.kind = spark::AppKind::kMapReduce;
  record_.executors_requested = tasks_total_;
  logger_.info(first_log_time, std::string(kMrAmClass),
               render_template(kMrAmCreated.format,
                               {{"attempt", attempt_id(app_)}}));
  // MR AM initialization (job setup, split computation) before the first
  // allocate heartbeat.
  cluster_.engine().schedule_after(rng_.lognormal_duration(millis(1300), 0.25),
                                   [this] { register_with_rm(); });
}

void MrApp::register_with_rm() {
  logger_.info(cluster_.engine().now(), std::string(kMrAmClass),
               std::string(kMrAmRegister.format));
  rm_.register_attempt(app_, this);
  if (config_.num_maps > 0) {
    yarn::ContainerAsk map_ask{config_.task_resource, config_.num_maps,
                               yarn::InstanceType::kMrMapTask,
                               /*preferred_nodes=*/{}};
    // One map per input block; maps prefer nodes holding their replicas.
    const std::string file = config_.input_file.empty()
                                 ? "mr-input-" + config_.name
                                 : config_.input_file;
    auto& blocks = cluster_.blocks();
    blocks.register_file(file, config_.num_maps);
    map_ask.preferred_nodes = blocks.nodes_with_replicas(file);
    rm_.request_containers(app_, std::move(map_ask));
  }
  if (config_.num_reduces > 0) {
    rm_.request_containers(
        app_, yarn::ContainerAsk{config_.task_resource, config_.num_reduces,
                                 yarn::InstanceType::kMrReduceTask,
                                 /*preferred_nodes=*/{}});
  }
  if (tasks_total_ == 0) {
    cluster_.engine().schedule_after(millis(50), [this] { maybe_finish(); });
  }
}

void MrApp::on_containers_acquired(
    const std::vector<yarn::Allocation>& acquired) {
  if (finished_) return;
  for (const yarn::Allocation& allocation : acquired) {
    const bool is_map = allocation.type == yarn::InstanceType::kMrMapTask;
    logger_.info(cluster_.engine().now(), std::string(kRmAllocatorClass),
                 render_template(kMrAmAssigned.format,
                                 {{"container", allocation.id.str()},
                                  {"task_kind", is_map ? "map" : "reduce"}}));
    const std::int32_t index = is_map ? maps_granted_++ : reduces_granted_++;
    launch_task(allocation, is_map, index);
  }
}

void MrApp::launch_task(const yarn::Allocation& allocation, bool is_map,
                        std::int32_t task_index) {
  yarn::LaunchSpec spec;
  spec.id = allocation.id;
  spec.resource = allocation.resource;
  spec.type = allocation.type;
  spec.localization_mb = config_.task_localization_mb;
  spec.package_key = "mr-task-pkg";
  spec.docker = config_.docker;
  spec.opportunistic = allocation.opportunistic;
  spec.on_process_started = [this, allocation, is_map, task_index](SimTime at) {
    on_task_started(allocation, is_map, task_index, at);
  };
  yarn::NodeManager& nm = rm_.node_manager(allocation.node);
  cluster_.engine().schedule_after(
      rm_.sample_rpc(),
      [&nm, spec = std::move(spec)] { nm.start_container(spec); });
}

void MrApp::on_task_started(const yarn::Allocation& allocation, bool is_map,
                            std::int32_t task_index, SimTime at) {
  if (finished_) return;
  auto task_logger = std::make_unique<logging::Logger>(
      &logs_, mr_task_stream(allocation.id),
      cluster_.config().epoch_base_ms);
  task_logger->info(at, std::string(kYarnChildClass),
                    std::string(kMrTaskBanner.format));
  task_logger->info(at, std::string(kYarnChildClass),
                    render_template(kMrTaskTokens.format,
                                    {{"container", allocation.id.str()}}));
  task_loggers_.push_back(std::move(task_logger));
  if (first_task_time_ == kNoTime) {
    first_task_time_ = at;
    record_.first_task_at = at;
  }
  const SimDuration duration =
      is_map ? rng_.lognormal_duration(config_.map_duration_median,
                                       config_.map_duration_sigma)
             : rng_.lognormal_duration(config_.reduce_duration_median,
                                       config_.reduce_duration_sigma);
  if (is_map && config_.io_units_per_map > 0) {
    cluster_.interference().add_io_units(config_.io_units_per_map);
  }
  const double io_units = is_map ? config_.io_units_per_map : 0.0;
  (void)task_index;
  cluster_.engine().schedule_after(duration, [this, allocation, io_units] {
    if (io_units > 0) cluster_.interference().remove_io_units(io_units);
    on_task_done(allocation);
  });
}

void MrApp::on_task_done(const yarn::Allocation& allocation) {
  rm_.node_manager(allocation.node).finish_container(allocation.id);
  ++tasks_completed_;
  maybe_finish();
}

void MrApp::maybe_finish() {
  if (finished_ || tasks_completed_ < tasks_total_) return;
  finished_ = true;
  logger_.info(cluster_.engine().now(), std::string(kMrAmClass),
               std::string(kMrAmFinished.format));
  rm_.unregister_attempt(app_);
  record_.executors_launched = tasks_completed_;
  record_.finished_at = cluster_.engine().now();
  const ContainerId am = am_container_;
  const NodeId node = node_;
  auto& rm = rm_;
  cluster_.engine().schedule_after(millis(25), [&rm, am, node] {
    rm.node_manager(node).finish_container(am);
  });
  if (config_.on_complete) config_.on_complete(record_);
}

}  // namespace sdc::workloads
