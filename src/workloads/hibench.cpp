#include "workloads/hibench.hpp"

#include <algorithm>

namespace sdc::workloads {
namespace {

/// Shared execution-model arithmetic (same shape as the TPC-H builder).
void fill_execution(spark::SparkAppConfig& config, double complexity,
                    const ExecutionModelConfig& model) {
  const double scan_bw = model.scan_bw_mbps_per_executor *
                         static_cast<double>(std::max(1, config.num_executors));
  config.scan_duration =
      static_cast<SimDuration>(config.input_mb / scan_bw * 1e6);
  config.execution_median = static_cast<SimDuration>(
      static_cast<double>(model.base_query_median + config.scan_duration) *
      complexity);
  config.execution_sigma = model.execution_sigma;
  config.scan_io_units = model.io_units_per_input_gb * config.input_mb / 1024.0;
  config.scan_transfer_units =
      model.transfer_units_per_input_gb * config.input_mb / 1024.0;
}

}  // namespace

spark::SparkAppConfig make_terasort(double input_mb,
                                    std::int32_t num_executors,
                                    const ExecutionModelConfig& model) {
  spark::SparkAppConfig config;
  config.name = "hibench-terasort";
  config.kind = spark::AppKind::kSparkSql;  // SQL-shaped logging
  config.num_executors = num_executors;
  config.input_mb = input_mb;
  config.files_opened = 1;  // one giant input
  fill_execution(config, /*complexity=*/1.1, model);
  // Sort shuffles everything: the scan channel pressure doubles.
  config.scan_io_units *= 2.0;
  config.num_stages = 2;  // sample + sort
  config.input_file = "terasort-input";
  return config;
}

spark::SparkAppConfig make_pagerank(double input_mb,
                                    std::int32_t num_executors,
                                    std::int32_t iterations,
                                    const ExecutionModelConfig& model) {
  spark::SparkAppConfig config;
  config.name = "hibench-pagerank";
  config.kind = spark::AppKind::kSparkSql;
  config.num_executors = num_executors;
  config.input_mb = input_mb;
  config.files_opened = 1;  // the edge list
  fill_execution(config, /*complexity=*/0.5 + 0.25 * iterations, model);
  config.num_stages = std::max(2, iterations);
  // Iterations revisit cached partitions: scan pressure only on iter 1.
  config.scan_duration = std::min<SimDuration>(config.scan_duration,
                                               config.execution_median / 4);
  config.cpu_units_while_running = 0.25;  // iterative compute leans on CPUs
  config.input_file = "pagerank-edges";
  return config;
}

spark::SparkAppConfig make_bayes(double input_mb, std::int32_t num_executors,
                                 const ExecutionModelConfig& model) {
  spark::SparkAppConfig config;
  config.name = "hibench-bayes";
  config.kind = spark::AppKind::kSparkSql;
  config.num_executors = num_executors;
  config.input_mb = input_mb;
  config.files_opened = 4;  // corpus + dictionary + model side files
  fill_execution(config, /*complexity=*/0.9, model);
  config.num_stages = 3;
  config.input_file = "bayes-corpus";
  return config;
}

spark::SparkAppConfig make_interactive_scan(double input_mb,
                                            std::int32_t num_executors,
                                            const ExecutionModelConfig& model) {
  spark::SparkAppConfig config;
  config.name = "hibench-scan";
  config.kind = spark::AppKind::kSparkSql;
  config.num_executors = num_executors;
  config.input_mb = input_mb;
  config.files_opened = 2;  // table + partition index
  fill_execution(config, /*complexity=*/0.35, model);
  config.num_stages = 1;  // single-wave scan+filter
  config.input_file = "scan-table";
  return config;
}

}  // namespace sdc::workloads
