// Log lines the simulated MapReduce AppMaster and its tasks emit,
// declared as introspectable `constexpr` templates (see
// common/log_contract.hpp).  The MR register line is the second phrasing
// of Table I message 10; the YarnChild banner anchors message 13 for MR
// task streams.
#pragma once

#include <span>

#include "common/log_contract.hpp"

namespace sdc::workloads {

inline constexpr std::string_view kMrAmClass =
    "org.apache.hadoop.mapreduce.v2.app.MRAppMaster";
inline constexpr std::string_view kRmAllocatorClass =
    "org.apache.hadoop.mapreduce.v2.app.rm.RMContainerAllocator";
inline constexpr std::string_view kYarnChildClass =
    "org.apache.hadoop.mapred.YarnChild";

inline constexpr contract::MilestoneSpec kMrAmCreated{
    "mr.am.created", kMrAmClass,
    "Created MRAppMaster for application {attempt}", "",
    contract::StreamRole::kMrAppMaster};
/// REGISTER (Table I message 10), MR phrasing.
inline constexpr contract::MilestoneSpec kMrAmRegister{
    "mr.am.register", kMrAmClass, "Registering with the ResourceManager",
    "DRV_REGISTER", contract::StreamRole::kMrAppMaster};
inline constexpr contract::MilestoneSpec kMrAmAssigned{
    "mr.am.assigned", kRmAllocatorClass,
    "Assigned container {container} to {task_kind}", "",
    contract::StreamRole::kMrAppMaster};
inline constexpr contract::MilestoneSpec kMrAmFinished{
    "mr.am.finished", kMrAmClass, "Job finished successfully, unregistering",
    "", contract::StreamRole::kMrAppMaster};

/// FIRST_LOG (Table I message 13) anchor for MR task streams.
inline constexpr contract::MilestoneSpec kMrTaskBanner{
    "mr.task.banner", kYarnChildClass, "YarnChild starting", "",
    contract::StreamRole::kMrTask};
inline constexpr contract::MilestoneSpec kMrTaskTokens{
    "mr.task.tokens", kYarnChildClass,
    "Executing with tokens for container {container}", "",
    contract::StreamRole::kMrTask};

inline constexpr contract::MilestoneSpec kMrMilestones[] = {
    kMrAmCreated, kMrAmRegister, kMrAmAssigned,
    kMrAmFinished, kMrTaskBanner, kMrTaskTokens,
};

/// The MR layer's declared log lines, for sdlint.
inline std::span<const contract::MilestoneSpec> mr_milestones() {
  return kMrMilestones;
}

}  // namespace sdc::workloads
