// Interference and load generators (paper §IV-C, §IV-E).
#pragma once

#include <cstdint>

#include "cluster/hdfs.hpp"
#include "spark/app_config.hpp"
#include "workloads/mr_app.hpp"

namespace sdc::workloads {

/// dfsIO: MapReduce job whose maps each write 20 GB into HDFS, saturating
/// disks + network.  `num_maps` sets the interference intensity (Fig. 12
/// sweeps 0 / 20 / 50 / 100).  Maps run for `duration` so the pressure
/// covers the whole measurement window.
[[nodiscard]] MrAppConfig make_dfsio(std::int32_t num_maps,
                                     SimDuration duration);

/// HiBench Kmeans: iterative Spark job configured with 4 executors x 16
/// vcores to overload node CPUs (Fig. 13 sweeps 0 / 4 / 8 / 16 parallel
/// apps).  YARN vcore accounting stays nominal (2 vcores) because the
/// paper deliberately oversubscribes physical CPUs; the pressure is
/// expressed through the interference model's CPU units.
[[nodiscard]] spark::SparkAppConfig make_kmeans(SimDuration duration);

/// MapReduce wordcount sized to occupy roughly `load_fraction` of the
/// cluster's vcores when all maps run (Table II / Fig. 7 load control via
/// input size: one map per HDFS block).
[[nodiscard]] MrAppConfig make_mr_wordcount_for_load(
    double load_fraction, std::int32_t cluster_vcores,
    SimDuration map_duration = seconds(25));

}  // namespace sdc::workloads
