#include "simcore/engine.hpp"

#include <cassert>
#include <utility>

#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"

namespace sdc::sim {

TimerHandle Engine::schedule_at(SimTime t, Callback cb) {
  static obs::Counter& scheduled =
      obs::catalog_counter(obs::metric::kSimEngineTimersScheduled);
  scheduled.add(1);
  assert(t >= now_ && "cannot schedule in the past");
  if (t < now_) t = now_;
  Entry entry;
  entry.time = t;
  entry.seq = next_seq_++;
  entry.cb = std::move(cb);
  entry.cancelled = std::make_shared<bool>(false);
  entry.fired = std::make_shared<bool>(false);
  TimerHandle handle;
  handle.cancelled_ = entry.cancelled;
  handle.fired_ = entry.fired;
  queue_.push(std::move(entry));
  return handle;
}

TimerHandle Engine::schedule_after(SimDuration d, Callback cb) {
  if (d < 0) d = 0;
  return schedule_at(now_ + d, std::move(cb));
}

std::size_t Engine::run(SimTime until) {
  std::size_t n = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.top().time > until) break;
    if (step()) ++n;
  }
  return n;
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast, which is safe
    // because the entry is popped immediately after.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.time;
    if (*entry.cancelled) continue;  // discard silently, try next
    *entry.fired = true;
    ++executed_;
    static obs::Counter& executed =
        obs::catalog_counter(obs::metric::kSimEngineEventsExecuted);
    executed.add(1);
    entry.cb();
    return true;
  }
  return false;
}

PeriodicTask PeriodicTask::start(Engine& engine, SimTime start,
                                 SimDuration interval,
                                 std::function<bool()> body) {
  PeriodicTask task;
  task.stopped_ = std::make_shared<bool>(false);
  auto stopped = task.stopped_;
  // Self-rescheduling closure; copies of `tick` share `stopped`.  The
  // stored function holds only a weak self-reference — the strong refs
  // live in the queued engine entries — so the chain frees itself once
  // no firing is pending (a strong capture here would be a cycle and
  // leak the closure and everything `body` owns).
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [&engine, interval, body = std::move(body), stopped, weak_tick] {
    if (*stopped) return;
    if (!body()) {
      *stopped = true;
      return;
    }
    if (auto self = weak_tick.lock())
      engine.schedule_after(interval, [self] { (*self)(); });
  };
  engine.schedule_at(start, [tick] { (*tick)(); });
  return task;
}

}  // namespace sdc::sim
