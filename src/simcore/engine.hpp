// Discrete-event simulation engine.
//
// Single-threaded and deterministic: events fire in (time, insertion
// sequence) order, so equal-time events execute in the order they were
// scheduled and a fixed RNG seed reproduces a run exactly — the property
// the byte-identical-logs guarantee rests on (DESIGN.md §5).
//
// Concurrency discipline (checked in the thread-safety CI build): the
// engine, its timers and `PeriodicTask` are *thread-confined* — every
// member is touched only from the thread driving `run()`/`step()`, so
// none of this state is SDC_GUARDED_BY a mutex on purpose.  The only
// cross-thread traffic out of a simulation is the metrics counters,
// which are relaxed atomics behind `obs::MetricsRegistry` (whose own
// registry maps are lock-annotated).  Do not add shared mutable state
// here without a `common::Mutex` + annotations.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "common/sim_time.hpp"

namespace sdc::sim {

/// Cancellation handle for a scheduled event.  Default-constructed handles
/// are inert.  Cancelling after the event fired is a harmless no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Prevents the event's callback from running (the queue entry stays
  /// until its time arrives, then is discarded).
  void cancel() const {
    if (cancelled_) *cancelled_ = true;
  }

  /// True if the event can still fire.
  [[nodiscard]] bool active() const {
    return cancelled_ && !*cancelled_ && !*fired_;
  }

 private:
  friend class Engine;
  std::shared_ptr<bool> cancelled_;
  std::shared_ptr<bool> fired_;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time (microseconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t`; `t` must be >= now().
  TimerHandle schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `d` microseconds (clamped to >= 0).
  TimerHandle schedule_after(SimDuration d, Callback cb);

  /// Runs until the queue drains or time would exceed `until`.
  /// Returns the number of callbacks executed.
  std::size_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Executes the single next event; returns false if the queue is empty.
  bool step();

  /// Makes `run` return after the current callback completes.
  void request_stop() noexcept { stop_requested_ = true; }

  /// Events still queued (including cancelled ones not yet discarded).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total callbacks executed since construction.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
    std::shared_ptr<bool> fired;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

/// Schedules `body` every `interval` starting at `start`, for as long as
/// `body` returns true.  Returns a handle cancelling the *next* firing.
/// Note: because each firing re-schedules, the handle is refreshed through
/// the shared state inside; cancelling stops the chain.
class PeriodicTask {
 public:
  PeriodicTask() = default;

  /// Starts the chain.  `body` is invoked at start, start+interval, ...
  static PeriodicTask start(Engine& engine, SimTime start,
                            SimDuration interval,
                            std::function<bool()> body);

  /// Stops future firings (in-flight callback still completes).
  void cancel() const {
    if (stopped_) *stopped_ = true;
  }

  [[nodiscard]] bool active() const { return stopped_ && !*stopped_; }

 private:
  std::shared_ptr<bool> stopped_;
};

}  // namespace sdc::sim
