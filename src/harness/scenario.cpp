#include "harness/scenario.hpp"

#include <algorithm>
#include <memory>

#include "simcore/engine.hpp"
#include "spark/driver.hpp"
#include "yarn/node_manager.hpp"
#include "yarn/resource_manager.hpp"

namespace sdc::harness {
namespace {

/// Shared mutable state for one scenario run.
struct RunState {
  std::vector<std::unique_ptr<spark::SparkDriver>> drivers;
  std::vector<std::unique_ptr<workloads::MrApp>> mr_apps;
  std::vector<spark::JobRecord> completed;
  std::size_t jobs_total = 0;
};

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, config.cluster);
  logging::LogBundle logs;
  Rng rng(config.seed);
  spark::SparkCostModel cost_model(config.spark_costs);
  yarn::LaunchModel launch_model;

  yarn::ResourceManager rm(cluster, logs, config.yarn, rng.fork(0x71).engine()());
  std::vector<std::unique_ptr<yarn::NodeManager>> nms;
  std::vector<yarn::NodeManager*> nm_ptrs;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const std::int64_t skew = i < config.nm_clock_skew_ms.size()
                                  ? config.nm_clock_skew_ms[i]
                                  : 0;
    nms.push_back(std::make_unique<yarn::NodeManager>(
        cluster, cluster.node(i), logs, rm.config(), rm.launch_model(),
        rng.fork(0x100 + i), skew));
    nm_ptrs.push_back(nms.back().get());
  }
  rm.attach_node_managers(nm_ptrs);
  rm.start();

  RunState state;
  state.jobs_total = config.spark_jobs.size() + config.mr_jobs.size();

  SimTime last_submission = 0;

  // Schedule Spark submissions.
  for (std::size_t i = 0; i < config.spark_jobs.size(); ++i) {
    const SparkSubmissionPlan& plan = config.spark_jobs[i];
    last_submission = std::max(last_submission, plan.at);
    engine.schedule_at(plan.at, [&, i] {
      const SparkSubmissionPlan& p = config.spark_jobs[i];
      spark::SparkAppConfig app_config = p.app;
      const SimTime submitted_at = engine.now();
      auto user_on_complete = app_config.on_complete;
      app_config.on_complete = [&state, submitted_at,
                                user_on_complete](const spark::JobRecord& r) {
        spark::JobRecord record = r;
        record.submitted_at = submitted_at;
        state.completed.push_back(record);
        if (user_on_complete) user_on_complete(record);
      };
      yarn::AppSubmission submission;
      submission.name = app_config.name;
      submission.am_type = yarn::InstanceType::kSparkDriver;
      submission.docker = app_config.docker;
      submission.warm_jvm = app_config.jvm_reuse;
      submission.am_failure_prob = app_config.am_failure_prob;
      submission.am_heartbeat = app_config.am_heartbeat;
      submission.on_am_started =
          [&, app_config](ApplicationId app, ContainerId am_container,
                          NodeId node, SimTime first_log) {
            state.drivers.push_back(std::make_unique<spark::SparkDriver>(
                cluster, rm, logs, app_config, app, am_container, node,
                first_log, rng.fork(0x9000 + static_cast<std::uint64_t>(app.id)),
                &cost_model));
          };
      rm.submit(std::move(submission));
    });
  }

  // Schedule MapReduce submissions.
  for (std::size_t i = 0; i < config.mr_jobs.size(); ++i) {
    const MrSubmissionPlan& plan = config.mr_jobs[i];
    last_submission = std::max(last_submission, plan.at);
    engine.schedule_at(plan.at, [&, i] {
      const MrSubmissionPlan& p = config.mr_jobs[i];
      workloads::MrAppConfig app_config = p.app;
      const SimTime submitted_at = engine.now();
      auto user_on_complete = app_config.on_complete;
      app_config.on_complete = [&state, submitted_at,
                                user_on_complete](const spark::JobRecord& r) {
        spark::JobRecord record = r;
        record.submitted_at = submitted_at;
        state.completed.push_back(record);
        if (user_on_complete) user_on_complete(record);
      };
      yarn::AppSubmission submission;
      submission.name = app_config.name;
      submission.am_type = yarn::InstanceType::kMrMaster;
      submission.am_localization_mb = app_config.am_localization_mb;
      submission.docker = app_config.docker;
      submission.am_heartbeat = app_config.am_heartbeat;
      submission.on_am_started =
          [&, app_config](ApplicationId app, ContainerId am_container,
                          NodeId node, SimTime first_log) {
            state.mr_apps.push_back(std::make_unique<workloads::MrApp>(
                cluster, rm, logs, app_config, app, am_container, node,
                first_log,
                rng.fork(0xA000 + static_cast<std::uint64_t>(app.id))));
          };
      rm.submit(std::move(submission));
    });
  }

  // Run in chunks: the NM heartbeat loops keep the event queue non-empty
  // forever, so "everything finished" is detected via the completion
  // count rather than queue drain.
  const SimDuration extra = config.extra_horizon > 0
                                ? config.extra_horizon
                                : seconds(4 * 3600);
  const SimTime hard_cap = last_submission + extra;
  ScenarioResult result;
  SimTime t = 0;
  while (state.completed.size() < state.jobs_total && t < hard_cap) {
    t = std::min<SimTime>(t + seconds(30), hard_cap);
    engine.run(t);
  }
  result.hit_time_cap = state.completed.size() < state.jobs_total;
  // Flush trailing bookkeeping events (FINISHED transitions, container
  // teardown logs).
  engine.run(engine.now() + seconds(10));

  std::sort(state.completed.begin(), state.completed.end(),
            [](const spark::JobRecord& a, const spark::JobRecord& b) {
              return a.app < b.app;
            });
  result.jobs = std::move(state.completed);
  result.containers_allocated = rm.containers_allocated();
  result.end_time = engine.now();
  result.events_executed = engine.executed();
  result.logs = std::move(logs);
  return result;
}

}  // namespace sdc::harness
