// Scenario runner: wires engine + cluster + RM + NMs, submits the planned
// workload mix, runs the simulation to completion and returns the log
// bundle (what SDchecker sees) plus ground-truth job records (what it is
// checked against).  Every benchmark and integration test goes through
// this one entry point.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "logging/log_bundle.hpp"
#include "spark/app_config.hpp"
#include "spark/cost_model.hpp"
#include "workloads/mr_app.hpp"
#include "yarn/config.hpp"

namespace sdc::harness {

struct SparkSubmissionPlan {
  SimTime at = 0;
  spark::SparkAppConfig app;
};

struct MrSubmissionPlan {
  SimTime at = 0;
  workloads::MrAppConfig app;
};

struct ScenarioConfig {
  std::uint64_t seed = 42;
  cluster::ClusterConfig cluster;
  yarn::YarnConfig yarn;
  spark::SparkCostConfig spark_costs;
  std::vector<SparkSubmissionPlan> spark_jobs;
  std::vector<MrSubmissionPlan> mr_jobs;
  /// Hard simulation cap beyond the last submission; 0 picks a generous
  /// default.  A scenario hitting the cap (deadlock) is reported via
  /// ScenarioResult::hit_time_cap.
  SimDuration extra_horizon = 0;
  /// Clock skew (ms) injected into NodeManager logs, one entry per node
  /// index (missing entries = 0) — for SDchecker robustness studies.
  std::vector<std::int64_t> nm_clock_skew_ms;
};

struct ScenarioResult {
  logging::LogBundle logs;
  /// Ground truth for every completed job, sorted by application id.
  std::vector<spark::JobRecord> jobs;
  std::int64_t containers_allocated = 0;
  SimTime end_time = 0;
  std::uint64_t events_executed = 0;
  bool hit_time_cap = false;
};

/// Runs one scenario start-to-finish.  Deterministic for a fixed config.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace sdc::harness
