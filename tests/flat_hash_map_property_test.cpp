// Property test for FlatHashMap (ISSUE 8): a seeded random
// churn of inserts, erases, updates and lookups, mirrored into a
// std::unordered_map reference model and compared after every step.
// The key-space and operation mix are chosen to cross rehash boundaries
// many times (growth) and to exercise the backward-shift erase under
// heavy collision chains, where the classic deletion bugs live.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_hash_map.hpp"
#include "common/rng.hpp"

namespace sdc {
namespace {

/// Deliberately clustered hash: many keys share low bits, so probe
/// chains get long and backward-shift erase has real work to do.
struct ClusteredHash {
  std::size_t operator()(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix_u64(key / 8));
  }
};

template <class Map>
void churn_against_reference(Map& map, std::uint64_t seed,
                             std::size_t steps, std::uint64_t key_space) {
  // The map may arrive pre-populated (the reserve test churns a live
  // map); the reference model starts from whatever it already holds.
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (const auto& [key, value] : map) reference.emplace(key, value);
  Rng rng(seed);
  for (std::size_t step = 0; step < steps; ++step) {
    const auto key = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(key_space) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:
      case 1: {  // insert-or-update (biased: the map must actually grow)
        const auto value =
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
        map[key] = value;
        reference[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(map.erase(key), reference.erase(key)) << "step " << step;
        break;
      }
      default: {  // lookup
        const auto it = map.find(key);
        const auto ref = reference.find(key);
        ASSERT_EQ(it != map.end(), ref != reference.end())
            << "step " << step << " key " << key;
        if (ref != reference.end()) {
          EXPECT_EQ(it->second, ref->second) << "step " << step;
        }
        EXPECT_EQ(map.contains(key), ref != reference.end());
        break;
      }
    }
    ASSERT_EQ(map.size(), reference.size()) << "step " << step;
  }
  // Full-content equivalence at the end: iteration covers exactly the
  // reference's pairs, no duplicates, no leftovers.
  std::size_t seen = 0;
  for (const auto& [key, value] : map) {
    const auto ref = reference.find(key);
    ASSERT_NE(ref, reference.end()) << "phantom key " << key;
    EXPECT_EQ(value, ref->second);
    ++seen;
  }
  EXPECT_EQ(seen, reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(map.contains(key)) << "lost key " << key;
  }
}

TEST(FlatHashMapProperty, ChurnMatchesReferenceAcrossRehashes) {
  // Small key-space => high insert/erase collision rate on live keys;
  // enough steps that the table grows through several rehashes and the
  // load factor repeatedly crosses the 7/8 growth threshold.
  for (const std::uint64_t seed : {1ull, 42ull, 20260808ull}) {
    FlatHashMap<std::uint64_t, std::uint64_t> map;
    churn_against_reference(map, seed, 20000, 4096);
  }
}

TEST(FlatHashMapProperty, ChurnSurvivesClusteredHashCollisions) {
  // Every group of 8 keys collides to one slot: probe chains wrap and
  // overlap, so backward-shift erase must move entries across several
  // displaced runs without breaking any other chain.
  for (const std::uint64_t seed : {7ull, 1234ull}) {
    FlatHashMap<std::uint64_t, std::uint64_t, ClusteredHash> map;
    churn_against_reference(map, seed, 12000, 512);
  }
}

TEST(FlatHashMapProperty, ReserveThenChurnStaysConsistent) {
  // reserve() mid-life (the miner reserves per-chunk estimates) must
  // preserve contents exactly like the reference.
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  Rng rng(99);
  for (std::size_t i = 0; i < 300; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 1023));
    map[key] = i;
    reference[key] = i;
  }
  map.reserve(8192);
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto it = map.find(key);
    ASSERT_NE(it, map.end());
    EXPECT_EQ(it->second, value);
  }
  churn_against_reference(map, 100, 4000, 1024);
}

TEST(FlatHashMapProperty, EraseDuringIterationOrderIndependence) {
  // Erasing every even key (collected first, then erased) leaves
  // exactly the odd keys regardless of probe layout.
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t key = 0; key < 1000; ++key) map[key] = key * key;
  std::vector<std::uint64_t> evens;
  for (const auto& [key, value] : map) {
    if (key % 2 == 0) evens.push_back(key);
  }
  for (const std::uint64_t key : evens) {
    EXPECT_EQ(map.erase(key), 1u);
  }
  EXPECT_EQ(map.size(), 500u);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(map.contains(key), key % 2 == 1);
  }
}

}  // namespace
}  // namespace sdc
