// Tests for the anomaly detector: the SPARK-21562 never-used-container
// signature, broken chains, and clock-skew findings.
#include <gtest/gtest.h>

#include "logging/log_bundle.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {
namespace {

constexpr std::int64_t kEpoch = 1'499'100'000'000;

std::string line(std::int64_t offset_ms, const std::string& cls,
                 const std::string& message) {
  return logging::format_epoch_ms(kEpoch + offset_ms) + " INFO  " + cls + ": " +
         message;
}

const std::string kRmContainer =
    "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl";
const std::string kRmApp =
    "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
const std::string kNmContainer =
    "org.apache.hadoop.yarn.server.nodemanager.containermanager.container."
    "ContainerImpl";

void rmc(logging::LogBundle& bundle, std::int64_t t, const std::string& cid,
         const std::string& from, const std::string& to) {
  bundle.append("rm.log", line(t, kRmContainer,
                               cid + " Container Transitioned from " + from +
                                   " to " + to));
}

void nmc(logging::LogBundle& bundle, std::int64_t t, const std::string& cid,
         const std::string& from, const std::string& to) {
  bundle.append("nm-node01.cluster.log",
                line(t, kNmContainer, "Container " + cid +
                                          " transitioned from " + from +
                                          " to " + to));
}

TEST(Anomaly, NeverUsedContainerDetected) {
  logging::LogBundle bundle;
  const std::string used = "container_1499100000000_0001_01_000002";
  const std::string unused = "container_1499100000000_0001_01_000003";
  rmc(bundle, 100, used, "NEW", "ALLOCATED");
  rmc(bundle, 200, used, "ALLOCATED", "ACQUIRED");
  nmc(bundle, 300, used, "NEW", "LOCALIZING");
  nmc(bundle, 800, used, "LOCALIZING", "SCHEDULED");
  nmc(bundle, 900, used, "SCHEDULED", "RUNNING");
  // The over-requested container: RM states only.
  rmc(bundle, 110, unused, "NEW", "ALLOCATED");
  rmc(bundle, 210, unused, "ALLOCATED", "ACQUIRED");
  rmc(bundle, 30'000, unused, "ACQUIRED", "RELEASED");

  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kNeverUsedContainer);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->entity, unused);
  EXPECT_NE(findings[0]->detail.find("over-requested"), std::string::npos);
}

TEST(Anomaly, AmContainerNeverFlaggedAsUnused) {
  logging::LogBundle bundle;
  const std::string am = "container_1499100000000_0001_01_000001";
  rmc(bundle, 100, am, "NEW", "ALLOCATED");
  rmc(bundle, 120, am, "ALLOCATED", "ACQUIRED");
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_TRUE(result.anomalies_of(AnomalyType::kNeverUsedContainer).empty());
}

TEST(Anomaly, ContainerWithNmActivityNotFlagged) {
  // A container the app killed during localization has NM events — it was
  // *used*, just short-lived; must not trip the bug detector.
  logging::LogBundle bundle;
  const std::string cid = "container_1499100000000_0001_01_000002";
  rmc(bundle, 100, cid, "NEW", "ALLOCATED");
  rmc(bundle, 200, cid, "ALLOCATED", "ACQUIRED");
  nmc(bundle, 300, cid, "NEW", "LOCALIZING");
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_TRUE(result.anomalies_of(AnomalyType::kNeverUsedContainer).empty());
}

TEST(Anomaly, BrokenChainsReported) {
  logging::LogBundle bundle;
  const std::string cid = "container_1499100000000_0001_01_000002";
  // SCHEDULED without LOCALIZING; ACQUIRED without ALLOCATED.
  rmc(bundle, 200, cid, "ALLOCATED", "ACQUIRED");
  nmc(bundle, 700, cid, "LOCALIZING", "SCHEDULED");
  nmc(bundle, 800, cid, "SCHEDULED", "RUNNING");
  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kMissingEvent);
  ASSERT_EQ(findings.size(), 2u);
}

TEST(Anomaly, AppChainBreakReported) {
  logging::LogBundle bundle;
  bundle.append("rm.log",
                line(100, kRmApp,
                     "application_1499100000000_0001 State change from "
                     "ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"));
  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kMissingEvent);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->entity, "app");
}

TEST(Anomaly, NegativeIntervalFlagsClockSkew) {
  logging::LogBundle bundle;
  const std::string cid = "container_1499100000000_0001_01_000002";
  rmc(bundle, 500, cid, "NEW", "ALLOCATED");
  rmc(bundle, 400, cid, "ALLOCATED", "ACQUIRED");  // skewed RM clock
  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kNegativeInterval);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_NE(findings[0]->detail.find("acquisition"), std::string::npos);
  EXPECT_NE(findings[0]->detail.find("skew"), std::string::npos);
}

TEST(Anomaly, SkewedCorpusFlagsCfClOutAppAndExecutorIdle) {
  // A synthetic corpus where the NM and executor clocks run behind the
  // RM clock.  Historically only total/am/driver/executor/alloc and the
  // four container phases were checked for negativity; cf, cl, out-app
  // and executor idle passed through silently.
  logging::LogBundle bundle;
  const std::string cid = "container_1499100000000_0001_01_000002";

  // RM (reference clock): submission at +10000.
  bundle.append("rm.log",
                line(10'000, kRmApp,
                     "application_1499100000000_0001 State change from "
                     "NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"));

  // NM clock is ~5 s behind: the worker reaches RUNNING "before" the app
  // was submitted -> cf and cl negative.
  nmc(bundle, 4'000, cid, "NEW", "LOCALIZING");
  nmc(bundle, 4'500, cid, "LOCALIZING", "SCHEDULED");
  nmc(bundle, 5'000, cid, "SCHEDULED", "RUNNING");

  // Driver: in-app share of 5 s.
  const std::string am_cls = "org.apache.spark.deploy.yarn.ApplicationMaster";
  bundle.append("driver.log", line(0, am_cls, "Registered signal handlers"));
  bundle.append("driver.log",
                line(100, am_cls,
                     "ApplicationAttemptId: appattempt_1499100000000_0001_"
                     "000001"));
  bundle.append("driver.log",
                line(5'000, am_cls, "Registering the ApplicationMaster"));

  // Executor: FIRST_LOG at +10400 but the (skewed) first task stamps
  // +9000 -> executor idle negative; total (9000-10000) < in-app
  // (5000-1400) -> out-app negative.
  const std::string backend =
      "org.apache.spark.executor.CoarseGrainedExecutorBackend";
  bundle.append("exec.log", line(10'400, backend, "Started daemon"));
  bundle.append("exec.log",
                line(10'450, backend,
                     "Connecting to driver for container " + cid));
  bundle.append("exec.log", line(9'000, backend, "Got assigned task 0"));

  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kNegativeInterval);
  const auto has = [&](const std::string& needle,
                       const std::string& entity) {
    for (const Anomaly* anomaly : findings) {
      if (anomaly->entity == entity &&
          anomaly->detail.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has("cf (first-container)", "app"));
  EXPECT_TRUE(has("cl (last-container)", "app"));
  EXPECT_TRUE(has("out-app delay", "app"));
  EXPECT_TRUE(has("executor idle time", cid));
  // The pre-existing checks still fire alongside the new ones.
  EXPECT_TRUE(has("total scheduling delay", "app"));
  EXPECT_TRUE(has("executor delay", "app"));
}

TEST(Anomaly, TypeNames) {
  EXPECT_EQ(anomaly_type_name(AnomalyType::kNeverUsedContainer),
            "never-used-container");
  EXPECT_EQ(anomaly_type_name(AnomalyType::kMissingEvent), "missing-event");
  EXPECT_EQ(anomaly_type_name(AnomalyType::kNegativeInterval),
            "negative-interval");
}

}  // namespace
}  // namespace sdc::checker
