// Tests for the anomaly detector: the SPARK-21562 never-used-container
// signature, broken chains, and clock-skew findings.
#include <gtest/gtest.h>

#include "logging/log_bundle.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {
namespace {

constexpr std::int64_t kEpoch = 1'499'100'000'000;

std::string line(std::int64_t offset_ms, const std::string& cls,
                 const std::string& message) {
  return logging::format_epoch_ms(kEpoch + offset_ms) + " INFO  " + cls + ": " +
         message;
}

const std::string kRmContainer =
    "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl";
const std::string kRmApp =
    "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
const std::string kNmContainer =
    "org.apache.hadoop.yarn.server.nodemanager.containermanager.container."
    "ContainerImpl";

void rmc(logging::LogBundle& bundle, std::int64_t t, const std::string& cid,
         const std::string& from, const std::string& to) {
  bundle.append("rm.log", line(t, kRmContainer,
                               cid + " Container Transitioned from " + from +
                                   " to " + to));
}

void nmc(logging::LogBundle& bundle, std::int64_t t, const std::string& cid,
         const std::string& from, const std::string& to) {
  bundle.append("nm-node01.cluster.log",
                line(t, kNmContainer, "Container " + cid +
                                          " transitioned from " + from +
                                          " to " + to));
}

TEST(Anomaly, NeverUsedContainerDetected) {
  logging::LogBundle bundle;
  const std::string used = "container_1499100000000_0001_01_000002";
  const std::string unused = "container_1499100000000_0001_01_000003";
  rmc(bundle, 100, used, "NEW", "ALLOCATED");
  rmc(bundle, 200, used, "ALLOCATED", "ACQUIRED");
  nmc(bundle, 300, used, "NEW", "LOCALIZING");
  nmc(bundle, 800, used, "LOCALIZING", "SCHEDULED");
  nmc(bundle, 900, used, "SCHEDULED", "RUNNING");
  // The over-requested container: RM states only.
  rmc(bundle, 110, unused, "NEW", "ALLOCATED");
  rmc(bundle, 210, unused, "ALLOCATED", "ACQUIRED");
  rmc(bundle, 30'000, unused, "ACQUIRED", "RELEASED");

  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kNeverUsedContainer);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->entity, unused);
  EXPECT_NE(findings[0]->detail.find("over-requested"), std::string::npos);
}

TEST(Anomaly, AmContainerNeverFlaggedAsUnused) {
  logging::LogBundle bundle;
  const std::string am = "container_1499100000000_0001_01_000001";
  rmc(bundle, 100, am, "NEW", "ALLOCATED");
  rmc(bundle, 120, am, "ALLOCATED", "ACQUIRED");
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_TRUE(result.anomalies_of(AnomalyType::kNeverUsedContainer).empty());
}

TEST(Anomaly, ContainerWithNmActivityNotFlagged) {
  // A container the app killed during localization has NM events — it was
  // *used*, just short-lived; must not trip the bug detector.
  logging::LogBundle bundle;
  const std::string cid = "container_1499100000000_0001_01_000002";
  rmc(bundle, 100, cid, "NEW", "ALLOCATED");
  rmc(bundle, 200, cid, "ALLOCATED", "ACQUIRED");
  nmc(bundle, 300, cid, "NEW", "LOCALIZING");
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_TRUE(result.anomalies_of(AnomalyType::kNeverUsedContainer).empty());
}

TEST(Anomaly, BrokenChainsReported) {
  logging::LogBundle bundle;
  const std::string cid = "container_1499100000000_0001_01_000002";
  // SCHEDULED without LOCALIZING; ACQUIRED without ALLOCATED.
  rmc(bundle, 200, cid, "ALLOCATED", "ACQUIRED");
  nmc(bundle, 700, cid, "LOCALIZING", "SCHEDULED");
  nmc(bundle, 800, cid, "SCHEDULED", "RUNNING");
  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kMissingEvent);
  ASSERT_EQ(findings.size(), 2u);
}

TEST(Anomaly, AppChainBreakReported) {
  logging::LogBundle bundle;
  bundle.append("rm.log",
                line(100, kRmApp,
                     "application_1499100000000_0001 State change from "
                     "ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"));
  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kMissingEvent);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->entity, "app");
}

TEST(Anomaly, NegativeIntervalFlagsClockSkew) {
  logging::LogBundle bundle;
  const std::string cid = "container_1499100000000_0001_01_000002";
  rmc(bundle, 500, cid, "NEW", "ALLOCATED");
  rmc(bundle, 400, cid, "ALLOCATED", "ACQUIRED");  // skewed RM clock
  const AnalysisResult result = SdChecker().analyze(bundle);
  const auto findings = result.anomalies_of(AnomalyType::kNegativeInterval);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_NE(findings[0]->detail.find("acquisition"), std::string::npos);
  EXPECT_NE(findings[0]->detail.find("skew"), std::string::npos);
}

TEST(Anomaly, TypeNames) {
  EXPECT_EQ(anomaly_type_name(AnomalyType::kNeverUsedContainer),
            "never-used-container");
  EXPECT_EQ(anomaly_type_name(AnomalyType::kMissingEvent), "missing-event");
  EXPECT_EQ(anomaly_type_name(AnomalyType::kNegativeInterval),
            "negative-interval");
}

}  // namespace
}  // namespace sdc::checker
