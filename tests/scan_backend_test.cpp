// Scan-backend equivalence: every SWAR/SIMD byte-scanning backend must
// be bit-for-bit interchangeable with the scalar reference loop — on raw
// buffers and through the whole mining pipeline.  The pipeline half is a
// fuzz-style sweep: the corpus mutator's damage classes (truncation,
// rotation, garbage bytes, clock skew, interleaving, ...) are pushed
// through `mine_directory` (the mmap/split_buffer read path) under every
// available backend, and the mined events *and* diagnostics must be
// identical to the scalar run.  Runs under ASan/UBSan and TSan in CI.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd.hpp"
#include "logging/log_bundle.hpp"
#include "sdchecker/corpus_mutator.hpp"
#include "sdchecker/miner.hpp"

namespace sdc::checker {
namespace {

using simd::ScanBackend;

/// Restores the active backend on scope exit so one test cannot leak its
/// override into the rest of the binary.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::active_scan_backend()) {}
  ~BackendGuard() { simd::set_scan_backend(saved_); }

 private:
  ScanBackend saved_;
};

std::filesystem::path corpus_dir() {
  for (std::filesystem::path dir = std::filesystem::current_path();
       !dir.empty() && dir != dir.root_path(); dir = dir.parent_path()) {
    const auto candidate = dir / "testdata" / "golden_small";
    if (std::filesystem::is_directory(candidate)) return candidate;
  }
  return std::filesystem::path("testdata") / "golden_small";
}

const logging::LogBundle& golden() {
  static const logging::LogBundle bundle =
      logging::LogBundle::read_from_directory(corpus_dir());
  return bundle;
}

// --- primitive equivalence ---------------------------------------------------

TEST(ScanBackend, RegistryNamesRoundTrip) {
  for (const ScanBackend backend : simd::available_scan_backends()) {
    const auto name = simd::scan_backend_name(backend);
    EXPECT_NE(name, "?");
    ScanBackend parsed = ScanBackend::kScalar;
    ASSERT_TRUE(simd::scan_backend_from_name(name, parsed)) << name;
    EXPECT_EQ(parsed, backend);
  }
  ScanBackend unused = ScanBackend::kScalar;
  EXPECT_FALSE(simd::scan_backend_from_name("mmx", unused));
}

TEST(ScanBackend, ScalarIsAlwaysAvailableAndBestIsActive) {
  const auto backends = simd::available_scan_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), ScanBackend::kScalar);
  BackendGuard guard;
  for (const ScanBackend backend : backends) {
    EXPECT_TRUE(simd::set_scan_backend(backend));
    EXPECT_EQ(simd::active_scan_backend(), backend);
  }
}

TEST(ScanBackend, FindAndCountMatchScalarOnCraftedBuffers) {
  // Sizes straddle every block width (8/16/32) and the match lands at
  // the head, inside a block, on a block seam, in the tail, or nowhere.
  std::vector<std::string> buffers;
  for (const std::size_t size : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 31u,
                                 32u, 33u, 63u, 64u, 65u, 200u}) {
    std::string base(size, 'a');
    buffers.push_back(base);                      // no match
    for (const std::size_t pos : {std::size_t{0}, size / 2, size - 1}) {
      if (pos >= size) continue;
      std::string hit = base;
      hit[pos] = '\n';
      buffers.push_back(hit);
    }
    std::string dense = base;
    for (std::size_t i = 0; i < size; i += 3) dense[i] = '\n';
    buffers.push_back(dense);
  }
  buffers.push_back("2017-07-03 16:40:00,123 INFO RMAppImpl: x\r\n\r\n\n");
  buffers.push_back(std::string("\0\0\n\0mixed\nnul\0bytes\n", 20));

  for (const std::string& buffer : buffers) {
    for (const char needle : {'\n', ':', '\0', 'a'}) {
      const std::size_t want_count =
          simd::count_byte(buffer, needle, ScanBackend::kScalar);
      for (const ScanBackend backend : simd::available_scan_backends()) {
        EXPECT_EQ(simd::count_byte(buffer, needle, backend), want_count)
            << simd::scan_backend_name(backend) << " size " << buffer.size();
        for (std::size_t from = 0; from <= buffer.size() + 1; ++from) {
          EXPECT_EQ(simd::find_byte(buffer, needle, from, backend),
                    simd::find_byte(buffer, needle, from,
                                    ScanBackend::kScalar))
              << simd::scan_backend_name(backend) << " size "
              << buffer.size() << " from " << from;
        }
      }
    }
  }
}

// --- pipeline equivalence under damage ---------------------------------------

struct MinedSnapshot {
  struct Event {
    EventKind kind;
    std::int64_t ts_ms;
    std::optional<ApplicationId> app;
    std::optional<ContainerId> container;
    std::string stream;
    std::size_t line_no;

    bool operator==(const Event&) const = default;
  };
  std::vector<Event> events;
  std::vector<std::tuple<logging::DiagnosticKind, std::string, std::size_t,
                         std::size_t, std::string>>
      diagnostics;
  std::size_t lines_total = 0;
  std::size_t lines_unparsed = 0;

  bool operator==(const MinedSnapshot&) const = default;
};

MinedSnapshot snapshot(const MineResult& result) {
  MinedSnapshot out;
  out.events.reserve(result.events.size());
  for (const auto event : result.events) {
    out.events.push_back(MinedSnapshot::Event{event.kind, event.ts_ms,
                                              event.app, event.container,
                                              std::string(event.stream),
                                              event.line_no});
  }
  for (const logging::Diagnostic& d : result.diagnostics) {
    out.diagnostics.emplace_back(d.kind, d.stream, d.line_no, d.count,
                                 d.detail);
  }
  out.lines_total = result.lines_total;
  out.lines_unparsed = result.lines_unparsed;
  return out;
}

TEST(ScanBackend, EveryDamageClassMinesIdenticallyUnderEveryBackend) {
  BackendGuard guard;
  const LogMiner miner{{.threads = 1}};
  const auto dir =
      std::filesystem::temp_directory_path() / "sdc_scan_backend_fuzz";
  for (const std::uint64_t seed : {42ull, 20170703ull}) {
    for (const MutationClass cls : all_mutation_classes()) {
      const logging::LogBundle mutated = apply_mutation(golden(), cls, seed);
      // Through the directory so every backend exercises the real
      // split_buffer scan over mmap'd bytes (including NUL-bearing
      // garbage lines that round-trip through write_to_directory).
      std::filesystem::remove_all(dir);
      mutated.write_to_directory(dir);

      ASSERT_TRUE(simd::set_scan_backend(ScanBackend::kScalar));
      const MinedSnapshot reference = snapshot(miner.mine_directory(dir));
      EXPECT_GT(reference.lines_total, 0u) << mutation_class_name(cls);

      for (const ScanBackend backend : simd::available_scan_backends()) {
        ASSERT_TRUE(simd::set_scan_backend(backend));
        const MinedSnapshot got = snapshot(miner.mine_directory(dir));
        EXPECT_EQ(got, reference)
            << mutation_class_name(cls) << " seed " << seed << " under "
            << simd::scan_backend_name(backend);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ScanBackend, InMemoryAndDirectoryAgreeOnIdentity) {
  BackendGuard guard;
  const LogMiner miner{{.threads = 1}};
  const auto dir =
      std::filesystem::temp_directory_path() / "sdc_scan_backend_identity";
  std::filesystem::remove_all(dir);
  golden().write_to_directory(dir);
  for (const ScanBackend backend : simd::available_scan_backends()) {
    ASSERT_TRUE(simd::set_scan_backend(backend));
    const MinedSnapshot in_memory = snapshot(miner.mine(golden()));
    const MinedSnapshot on_disk = snapshot(miner.mine_directory(dir));
    EXPECT_EQ(in_memory, on_disk) << simd::scan_backend_name(backend);
    EXPECT_GT(in_memory.events.size(), 0u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sdc::checker
