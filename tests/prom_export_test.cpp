// Tests for the Prometheus text-exposition writer and its
// writer-independent validator: mechanical name mangling, HELP/TYPE
// metadata from the metric catalog, cumulative histogram rendering
// (empty histograms, overflow folding into +Inf, _count == +Inf), and
// the validator's rejection of malformed or self-inconsistent
// documents.
#include <gtest/gtest.h>

#include <string>

#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_export.hpp"
#include "sdchecker/trace_export.hpp"

namespace sdc::obs {
namespace {

// --- name mangling -----------------------------------------------------

TEST(PromName, StrictManglesDotsAndDashes) {
  EXPECT_EQ(prom_name_strict("sdc.delay.overall"), "sdc_delay_overall");
  EXPECT_EQ(prom_name_strict("mine.diagnostics.unreadable-file"),
            "mine_diagnostics_unreadable_file");
  EXPECT_EQ(prom_name_strict("obs.http.latency_ms.metrics"),
            "obs_http_latency_ms_metrics");
}

TEST(PromName, StrictRejectsUnmappableNames) {
  EXPECT_FALSE(prom_name_strict("").has_value());
  EXPECT_FALSE(prom_name_strict("fixture.bad%char").has_value());
  EXPECT_FALSE(prom_name_strict("2fast").has_value());
  EXPECT_FALSE(prom_name_strict("has space").has_value());
}

TEST(PromName, LenientAlwaysProducesValidNames) {
  for (const std::string name :
       {"fixture.bad%char", "2fast", "has space", "", "..."}) {
    EXPECT_TRUE(is_valid_prom_name(prom_name(name))) << name;
  }
  // Where strict succeeds the two agree.
  EXPECT_EQ(prom_name("sdc.delay.overall"), "sdc_delay_overall");
}

TEST(PromName, EveryCatalogRowManglesStrictly) {
  for (const MetricSpec& row : metric_catalog()) {
    const std::string_view name =
        row.is_family() ? row.family_prefix() : row.name;
    std::string base(name);
    if (!base.empty() && base.back() == '.') base.pop_back();
    EXPECT_TRUE(prom_name_strict(base).has_value()) << row.name;
  }
}

// --- rendering ---------------------------------------------------------

TEST(PromRender, CountersAndGaugesCarryCatalogMetadata) {
  MetricsSnapshot snapshot;
  snapshot.counters["mine.lines"] = 42;
  snapshot.gauges["mine.lines_expected"] = -3;
  const std::string text = render_prom_text(snapshot);
  EXPECT_NE(text.find("# TYPE mine_lines counter\nmine_lines 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mine_lines_expected gauge\n"
                      "mine_lines_expected -3\n"),
            std::string::npos);
  // HELP text comes from the catalog row.
  EXPECT_NE(text.find("# HELP mine_lines log lines mined (all chunks)\n"),
            std::string::npos);
  const PromCheckResult check = check_prom_text(text);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(check.families, 2u);
  EXPECT_EQ(check.samples, 2u);
}

TEST(PromRender, UncatalogedStrayGetsFallbackHelp) {
  MetricsSnapshot snapshot;
  snapshot.counters["rogue.instrument"] = 1;
  const std::string text = render_prom_text(snapshot);
  EXPECT_NE(text.find("# HELP rogue_instrument (not in the metric catalog)"),
            std::string::npos);
  EXPECT_TRUE(check_prom_text(text).ok);
}

TEST(PromRender, EmptyHistogramStillValidates) {
  MetricsSnapshot snapshot;
  MetricsSnapshot::HistogramValue histogram;
  histogram.upper_edges = {1, 10};
  histogram.bucket_counts = {0, 0, 0};
  snapshot.histograms["sdc.delay.total"] = histogram;
  const std::string text = render_prom_text(snapshot);
  EXPECT_NE(text.find("sdc_delay_total_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("sdc_delay_total_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("sdc_delay_total_count 0\n"), std::string::npos);
  const PromCheckResult check = check_prom_text(text);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST(PromRender, HistogramBucketsAreCumulativeWithOverflowInInf) {
  MetricsSnapshot snapshot;
  MetricsSnapshot::HistogramValue histogram;
  histogram.upper_edges = {1, 10, 100};
  histogram.bucket_counts = {2, 3, 0, 5};  // last entry = overflow
  histogram.count = 10;
  histogram.sum = 1234.5;
  snapshot.histograms["sdc.delay.total"] = histogram;
  const std::string text = render_prom_text(snapshot);
  EXPECT_NE(text.find("_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"10\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"100\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 10\n"), std::string::npos);
  EXPECT_NE(text.find("_sum 1234.5\n"), std::string::npos);
  EXPECT_NE(text.find("_count 10\n"), std::string::npos);
  EXPECT_TRUE(check_prom_text(text).ok);
}

TEST(PromRender, CountRecomputedFromBucketsNotRacingAtomic) {
  // A snapshot where the count atomic raced ahead of the buckets: the
  // rendered document must still satisfy _count == +Inf.
  MetricsSnapshot snapshot;
  MetricsSnapshot::HistogramValue histogram;
  histogram.upper_edges = {1};
  histogram.bucket_counts = {4, 0};
  histogram.count = 7;  // skewed
  snapshot.histograms["sdc.delay.total"] = histogram;
  const std::string text = render_prom_text(snapshot);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("_count 4\n"), std::string::npos);
  EXPECT_TRUE(check_prom_text(text).ok);
}

TEST(PromRender, FullRegistrySnapshotValidatesAndCoversCatalog) {
  register_catalog_baseline();
  for (const checker::DelayComponentSpec& spec :
       checker::delay_component_specs()) {
    MetricsRegistry::global().histogram(std::string(spec.histogram));
  }
  const std::string text =
      render_prom_text(MetricsRegistry::global().snapshot());
  const PromCheckResult check = check_prom_text(text);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  // Every non-family catalog row is present under its mangled name.
  for (const MetricSpec& row : metric_catalog()) {
    if (row.is_family()) continue;
    const std::string prom = *prom_name_strict(row.name);
    EXPECT_NE(text.find("# TYPE " + prom + " "), std::string::npos)
        << row.name;
  }
  // And the delay family appears as full histogram series.
  EXPECT_NE(text.find("sdc_delay_total_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sdc_delay_total_sum"), std::string::npos);
  EXPECT_NE(text.find("sdc_delay_total_count"), std::string::npos);
}

// --- validator rejections ----------------------------------------------

std::string first_error(const PromCheckResult& result) {
  return result.errors.empty() ? "" : result.errors[0];
}

TEST(PromCheck, RejectsMissingTrailingNewline) {
  const PromCheckResult result =
      check_prom_text("# TYPE a counter\na 1");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(first_error(result).find("newline"), std::string::npos);
}

TEST(PromCheck, RejectsSampleWithoutType) {
  const PromCheckResult result = check_prom_text("a 1\n");
  EXPECT_FALSE(result.ok);
}

TEST(PromCheck, RejectsDuplicateSample) {
  const PromCheckResult result =
      check_prom_text("# TYPE a counter\na 1\na 2\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(first_error(result).find("duplicate sample"),
            std::string::npos);
}

TEST(PromCheck, RejectsTypeAfterSamples) {
  const PromCheckResult result =
      check_prom_text("# TYPE a counter\na 1\n# TYPE a counter\n");
  EXPECT_FALSE(result.ok);
}

TEST(PromCheck, RejectsNonCumulativeBuckets) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 9\n"
      "h_count 5\n";
  const PromCheckResult result = check_prom_text(text);
  EXPECT_FALSE(result.ok);
}

TEST(PromCheck, RejectsHistogramWithoutInfBucket) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_sum 9\n"
      "h_count 5\n";
  EXPECT_FALSE(check_prom_text(text).ok);
}

TEST(PromCheck, RejectsCountDisagreeingWithInfBucket) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 9\n"
      "h_count 6\n";
  EXPECT_FALSE(check_prom_text(text).ok);
}

TEST(PromCheck, RejectsGarbageLinesAndBadLabels) {
  EXPECT_FALSE(check_prom_text("not an exposition {{{\n").ok);
  EXPECT_FALSE(check_prom_text("# TYPE a counter\na{x=unquoted} 1\n").ok);
  EXPECT_FALSE(check_prom_text("# TYPE a counter\na{x=\"y\" 1\n").ok);
  EXPECT_FALSE(check_prom_text("# TYPE a counter\na notafloat\n").ok);
}

TEST(PromCheck, AcceptsHeadComformantExtras) {
  // Free-form comments, label sets and timestamps are all legal.
  const std::string text =
      "# a comment\n"
      "# TYPE a counter\n"
      "a{job=\"x\",instance=\"y\"} 1 1700000000000\n";
  const PromCheckResult result = check_prom_text(text);
  EXPECT_TRUE(result.ok) << first_error(result);
}

}  // namespace
}  // namespace sdc::obs
