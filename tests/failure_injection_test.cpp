// Failure-injection tests: executor launch failures, driver-side
// replacement, and SDchecker's view of the failed containers.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

harness::ScenarioResult run_with_failures(double failure_prob,
                                          std::uint64_t seed = 601,
                                          int jobs = 6) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  scenario.extra_horizon = seconds(8 * 3600);
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 9 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    plan.app.executor_failure_prob = failure_prob;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return harness::run_scenario(scenario);
}

TEST(FailureInjection, JobsCompleteDespiteLaunchFailures) {
  const auto result = run_with_failures(0.3);
  ASSERT_EQ(result.jobs.size(), 6u);
  std::int32_t total_failures = 0;
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.executors_launched, 4) << job.app.str();
    EXPECT_GT(job.finished_at, job.first_task_at);
    total_failures += job.executors_failed;
  }
  // With p=0.3 over ~24 launches, failures are essentially certain.
  EXPECT_GT(total_failures, 0);
}

TEST(FailureInjection, FailedContainersLogExitedWithFailure) {
  const auto result = run_with_failures(0.5, 602, 4);
  std::size_t failure_lines = 0;
  for (const auto& name : result.logs.stream_names()) {
    if (name.rfind("nm-", 0) != 0) continue;
    for (const auto& line : result.logs.lines(name)) {
      if (line.find("to EXITED_WITH_FAILURE") != std::string::npos) {
        ++failure_lines;
      }
    }
  }
  std::int32_t reported = 0;
  for (const auto& job : result.jobs) reported += job.executors_failed;
  EXPECT_EQ(failure_lines, static_cast<std::size_t>(reported));
  EXPECT_GT(reported, 0);
}

TEST(FailureInjection, SdcheckerSeesFailedContainersWithoutFirstLog) {
  const auto result = run_with_failures(0.5, 603, 4);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  std::size_t failed_containers = 0;
  for (const auto& [app, timeline] : analysis.timelines) {
    for (const auto& [cid, container] : timeline.containers) {
      if (container.has(checker::EventKind::kNmFailed)) {
        ++failed_containers;
        // A launch failure means the process never wrote a line.
        EXPECT_FALSE(container.has(checker::EventKind::kExecutorFirstLog));
        EXPECT_TRUE(container.has(checker::EventKind::kNmRunning));
      }
    }
  }
  EXPECT_GT(failed_containers, 0u);
  // Failures are not over-request anomalies: the detector stays quiet.
  EXPECT_TRUE(
      analysis.anomalies_of(checker::AnomalyType::kNeverUsedContainer).empty());
}

TEST(FailureInjection, DecompositionStillResolvesTotals) {
  const auto result = run_with_failures(0.4, 604, 5);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  ASSERT_EQ(analysis.delays.size(), 5u);
  for (const auto& [app, delays] : analysis.delays) {
    ASSERT_TRUE(delays.total.has_value()) << app.str();
    ASSERT_TRUE(delays.in_app && delays.out_app);
    EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
    EXPECT_TRUE(analysis.graph_for(app).validate().empty());
  }
}

TEST(FailureInjection, FailuresLengthenSchedulingDelay) {
  // Replacement containers restart the allocation+localization+launch
  // pipeline, so heavy failure rates push the total delay tail out.
  const auto clean = run_with_failures(0.0, 605, 8);
  const auto flaky = run_with_failures(0.6, 605, 8);
  const auto delays_of = [](const harness::ScenarioResult& r) {
    SampleSet set;
    for (const auto& job : r.jobs) {
      set.add(to_seconds(job.first_task_at - job.submitted_at));
    }
    return set;
  };
  EXPECT_GT(delays_of(flaky).p95(), delays_of(clean).p95());
}

TEST(FailureInjection, ResourcesReleasedAfterFailures) {
  // After everything drains, no node may hold residual allocations.
  harness::ScenarioConfig scenario;
  scenario.seed = 606;
  harness::SparkSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app = workloads::make_tpch_query(1, 1024, 4);
  plan.app.executor_failure_prob = 0.5;
  scenario.spark_jobs.push_back(std::move(plan));
  const auto result = harness::run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 1u);
  // Ground truth says completed; the logs' final NM lines are DONE/RELEASED.
  std::size_t done_lines = 0;
  for (const auto& name : result.logs.stream_names()) {
    for (const auto& line : result.logs.lines(name)) {
      if (line.find("to DONE") != std::string::npos) ++done_lines;
    }
  }
  // AM + 4 executors + any failed attempts all reached DONE.
  EXPECT_GE(done_lines, 5u);
}

}  // namespace
}  // namespace sdc
