// Cross-feature combination tests: the failure modes and optimizations
// must compose without corrupting each other's log signatures.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

TEST(Combo, OverRequestPlusExecutorFailures) {
  // The anomaly detector must still count exactly the over-request
  // surplus: failed-and-replaced containers have NM activity and must not
  // be confused with never-used ones.
  harness::ScenarioConfig scenario;
  scenario.seed = 1301;
  scenario.yarn.scheduler = yarn::SchedulerKind::kOpportunistic;
  scenario.extra_horizon = seconds(8 * 3600);
  for (int i = 0; i < 6; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 9 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    plan.app.over_request_factor = 1.5;   // 2 surplus per app
    plan.app.executor_failure_prob = 0.3;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 6u);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  const auto findings =
      analysis.anomalies_of(checker::AnomalyType::kNeverUsedContainer);
  // At least the 12 over-request surplus containers are flagged.  A
  // replacement request that arrives after an executor failure may itself
  // be over-granted... it is not (replacements ask for exactly 1), so the
  // count stays exactly 2 per app.
  EXPECT_EQ(findings.size(), 12u);
}

TEST(Combo, DockerPlusJvmReusePlusCache) {
  // All three launch-path features together: Docker overhead, warm JVM,
  // localization cache.
  harness::ScenarioConfig scenario;
  scenario.seed = 1302;
  scenario.yarn.enable_localization_cache = true;
  for (int i = 0; i < 8; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 8 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    plan.app.docker = true;
    plan.app.jvm_reuse = true;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 8u);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  for (const auto& [app, delays] : analysis.delays) {
    ASSERT_TRUE(delays.total.has_value());
    EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
  }
  // Warm JVM keeps launching short even with the Docker overhead on top.
  EXPECT_LT(analysis.aggregate.launching.median(), 0.7);
}

TEST(Combo, SamplingSchedulerWithFailures) {
  harness::ScenarioConfig scenario;
  scenario.seed = 1303;
  scenario.yarn.scheduler = yarn::SchedulerKind::kSampling;
  scenario.extra_horizon = seconds(8 * 3600);
  for (int i = 0; i < 6; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 9 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    plan.app.executor_failure_prob = 0.4;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 6u);
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.executors_launched, 4);
  }
}

TEST(Combo, AmRetryPlusExecutorFailuresPlusSkew) {
  harness::ScenarioConfig scenario;
  scenario.seed = 1304;
  scenario.extra_horizon = seconds(8 * 3600);
  scenario.nm_clock_skew_ms.assign(25, -1500);
  for (int i = 0; i < 5; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 9 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    plan.app.am_failure_prob = 0.4;
    plan.app.executor_failure_prob = 0.3;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  EXPECT_GE(result.jobs.size(), 3u);  // most complete despite the chaos
  // Analysis must not crash and totals resolve for completed jobs; skew
  // shows up as negative-interval findings, nothing worse.
  const auto analysis = checker::SdChecker().analyze(result.logs);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(analysis.delays.at(job.app).total.has_value());
  }
  (void)analysis.aggregate.render_text();
}

}  // namespace
}  // namespace sdc
