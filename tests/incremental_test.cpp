// Tests for the streaming analyzer: equivalence with batch analysis,
// event parking until stream binding, interleaved feeding, partial views.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/incremental.hpp"
#include "workloads/tpch.hpp"

namespace sdc::checker {
namespace {

harness::ScenarioResult small_run(int jobs = 4, std::uint64_t seed = 301) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 7 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 2);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return harness::run_scenario(scenario);
}

TEST(Incremental, MatchesBatchAnalysisExactly) {
  const auto run = small_run();
  // Batch.
  const AnalysisResult batch = SdChecker().analyze(run.logs);
  // Streaming: feed stream by stream, in file order.
  IncrementalAnalyzer analyzer;
  for (const auto& name : run.logs.stream_names()) {
    analyzer.feed_all(name, run.logs.lines(name));
  }
  const AnalysisResult streamed = analyzer.snapshot();

  ASSERT_EQ(streamed.delays.size(), batch.delays.size());
  for (const auto& [app, batch_delays] : batch.delays) {
    const Delays& live = streamed.delays.at(app);
    EXPECT_EQ(live.total, batch_delays.total) << app.str();
    EXPECT_EQ(live.am, batch_delays.am);
    EXPECT_EQ(live.driver, batch_delays.driver);
    EXPECT_EQ(live.executor, batch_delays.executor);
    EXPECT_EQ(live.alloc, batch_delays.alloc);
    EXPECT_EQ(live.containers.size(), batch_delays.containers.size());
  }
  EXPECT_EQ(streamed.lines_total, batch.lines_total);
  EXPECT_EQ(streamed.lines_unparsed, batch.lines_unparsed);
  EXPECT_EQ(streamed.events_total, batch.events_total);
  EXPECT_EQ(analyzer.events_pending(), 0u);
}

TEST(Incremental, InterleavedRoundRobinFeedMatchesToo) {
  const auto run = small_run(3, 302);
  const AnalysisResult batch = SdChecker().analyze(run.logs);

  // Round-robin across streams: one line at a time, preserving per-stream
  // order but interleaving streams maximally.
  IncrementalAnalyzer analyzer;
  const auto names = run.logs.stream_names();
  std::vector<std::size_t> cursor(names.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto& lines = run.logs.lines(names[i]);
      if (cursor[i] < lines.size()) {
        analyzer.feed(names[i], lines[cursor[i]++]);
        progressed = true;
      }
    }
  }
  const AnalysisResult streamed = analyzer.snapshot();
  ASSERT_EQ(streamed.delays.size(), batch.delays.size());
  for (const auto& [app, batch_delays] : batch.delays) {
    EXPECT_EQ(streamed.delays.at(app).total, batch_delays.total);
    EXPECT_EQ(streamed.delays.at(app).in_app, batch_delays.in_app);
  }
}

TEST(Incremental, EventsParkUntilStreamBinds) {
  IncrementalAnalyzer analyzer;
  const std::string first =
      "2017-07-03 16:40:00,000 INFO  org.apache.spark.deploy.yarn."
      "ApplicationMaster: Registered signal handlers for [TERM]";
  const std::string reg =
      "2017-07-03 16:40:03,000 INFO  org.apache.spark.deploy.yarn."
      "ApplicationMaster: Registering the ApplicationMaster with the "
      "ResourceManager";
  const std::string binder =
      "2017-07-03 16:40:03,100 INFO  org.apache.spark.deploy.yarn."
      "ApplicationMaster: ApplicationAttemptId: appattempt_1499100000000_"
      "0009_000001";
  analyzer.feed("driver.log", first);
  analyzer.feed("driver.log", reg);
  // FIRST_LOG + REGISTER are parked: no id seen yet.
  EXPECT_EQ(analyzer.events_pending(), 2u);
  EXPECT_TRUE(analyzer.timelines().empty());
  analyzer.feed("driver.log", binder);
  EXPECT_EQ(analyzer.events_pending(), 0u);
  ASSERT_EQ(analyzer.timelines().size(), 1u);
  const AppTimeline& timeline = analyzer.timelines().begin()->second;
  EXPECT_EQ(timeline.ts(EventKind::kDriverFirstLog), 1'499'100'000'000);
  EXPECT_EQ(timeline.ts(EventKind::kDriverRegister), 1'499'100'003'000);
  const Delays delays = analyzer.delays_for(timeline.app);
  EXPECT_EQ(delays.driver, 3000);
}

TEST(Incremental, PartialViewGrowsMonotonically) {
  const auto run = small_run(1, 303);
  // Feed the RM log only: am should resolve, total should not.
  IncrementalAnalyzer analyzer;
  analyzer.feed_all("rm.log", run.logs.lines("rm.log"));
  ASSERT_EQ(analyzer.timelines().size(), 1u);
  const ApplicationId app = analyzer.timelines().begin()->first;
  const Delays rm_only = analyzer.delays_for(app);
  EXPECT_TRUE(rm_only.am.has_value());
  EXPECT_FALSE(rm_only.total.has_value());
  EXPECT_FALSE(rm_only.driver.has_value());
  // Now the rest arrives; everything fills in.
  for (const auto& name : run.logs.stream_names()) {
    if (name != "rm.log") analyzer.feed_all(name, run.logs.lines(name));
  }
  const Delays full = analyzer.delays_for(app);
  EXPECT_EQ(full.am, rm_only.am);  // already-seen intervals are stable
  EXPECT_TRUE(full.total.has_value());
  EXPECT_TRUE(full.driver.has_value());
}

TEST(Incremental, UnknownAppQueryReturnsEmptyDelays) {
  IncrementalAnalyzer analyzer;
  const Delays delays = analyzer.delays_for(ApplicationId{1, 42});
  EXPECT_FALSE(delays.total.has_value());
  EXPECT_EQ(delays.app.id, 42);
}

}  // namespace
}  // namespace sdc::checker
