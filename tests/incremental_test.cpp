// Tests for the streaming analyzer: equivalence with batch analysis,
// event parking until stream binding, interleaved feeding, partial views.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "harness/scenario.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/incremental.hpp"
#include "workloads/tpch.hpp"

namespace sdc::checker {
namespace {

harness::ScenarioResult small_run(int jobs = 4, std::uint64_t seed = 301) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 7 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 2);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return harness::run_scenario(scenario);
}

TEST(Incremental, MatchesBatchAnalysisExactly) {
  const auto run = small_run();
  // Batch.
  const AnalysisResult batch = SdChecker().analyze(run.logs);
  // Streaming: feed stream by stream, in file order.
  IncrementalAnalyzer analyzer;
  for (const auto& name : run.logs.stream_names()) {
    analyzer.feed_all(name, run.logs.lines(name));
  }
  const AnalysisResult streamed = analyzer.snapshot();

  ASSERT_EQ(streamed.delays.size(), batch.delays.size());
  for (const auto& [app, batch_delays] : batch.delays) {
    const Delays& live = streamed.delays.at(app);
    EXPECT_EQ(live.total, batch_delays.total) << app.str();
    EXPECT_EQ(live.am, batch_delays.am);
    EXPECT_EQ(live.driver, batch_delays.driver);
    EXPECT_EQ(live.executor, batch_delays.executor);
    EXPECT_EQ(live.alloc, batch_delays.alloc);
    EXPECT_EQ(live.containers.size(), batch_delays.containers.size());
  }
  EXPECT_EQ(streamed.lines_total, batch.lines_total);
  EXPECT_EQ(streamed.lines_unparsed, batch.lines_unparsed);
  EXPECT_EQ(streamed.events_total, batch.events_total);
  EXPECT_EQ(analyzer.events_pending(), 0u);
}

TEST(Incremental, InterleavedRoundRobinFeedMatchesToo) {
  const auto run = small_run(3, 302);
  const AnalysisResult batch = SdChecker().analyze(run.logs);

  // Round-robin across streams: one line at a time, preserving per-stream
  // order but interleaving streams maximally.
  IncrementalAnalyzer analyzer;
  const auto names = run.logs.stream_names();
  std::vector<std::size_t> cursor(names.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto& lines = run.logs.lines(names[i]);
      if (cursor[i] < lines.size()) {
        analyzer.feed(names[i], lines[cursor[i]++]);
        progressed = true;
      }
    }
  }
  const AnalysisResult streamed = analyzer.snapshot();
  ASSERT_EQ(streamed.delays.size(), batch.delays.size());
  for (const auto& [app, batch_delays] : batch.delays) {
    EXPECT_EQ(streamed.delays.at(app).total, batch_delays.total);
    EXPECT_EQ(streamed.delays.at(app).in_app, batch_delays.in_app);
  }
}

TEST(Incremental, EventsParkUntilStreamBinds) {
  IncrementalAnalyzer analyzer;
  const std::string first =
      "2017-07-03 16:40:00,000 INFO  org.apache.spark.deploy.yarn."
      "ApplicationMaster: Registered signal handlers for [TERM]";
  const std::string reg =
      "2017-07-03 16:40:03,000 INFO  org.apache.spark.deploy.yarn."
      "ApplicationMaster: Registering the ApplicationMaster with the "
      "ResourceManager";
  const std::string binder =
      "2017-07-03 16:40:03,100 INFO  org.apache.spark.deploy.yarn."
      "ApplicationMaster: ApplicationAttemptId: appattempt_1499100000000_"
      "0009_000001";
  analyzer.feed("driver.log", first);
  analyzer.feed("driver.log", reg);
  // FIRST_LOG + REGISTER are parked: no id seen yet.
  EXPECT_EQ(analyzer.events_pending(), 2u);
  EXPECT_TRUE(analyzer.timelines().empty());
  analyzer.feed("driver.log", binder);
  EXPECT_EQ(analyzer.events_pending(), 0u);
  ASSERT_EQ(analyzer.timelines().size(), 1u);
  const AppTimeline& timeline = analyzer.timelines().begin()->second;
  EXPECT_EQ(timeline.ts(EventKind::kDriverFirstLog), 1'499'100'000'000);
  EXPECT_EQ(timeline.ts(EventKind::kDriverRegister), 1'499'100'003'000);
  const Delays delays = analyzer.delays_for(timeline.app);
  EXPECT_EQ(delays.driver, 3000);
}

TEST(Incremental, PartialViewGrowsMonotonically) {
  const auto run = small_run(1, 303);
  // Feed the RM log only: am should resolve, total should not.
  IncrementalAnalyzer analyzer;
  analyzer.feed_all("rm.log", run.logs.lines("rm.log"));
  ASSERT_EQ(analyzer.timelines().size(), 1u);
  const ApplicationId app = analyzer.timelines().begin()->first;
  const Delays rm_only = analyzer.delays_for(app);
  EXPECT_TRUE(rm_only.am.has_value());
  EXPECT_FALSE(rm_only.total.has_value());
  EXPECT_FALSE(rm_only.driver.has_value());
  // Now the rest arrives; everything fills in.
  for (const auto& name : run.logs.stream_names()) {
    if (name != "rm.log") analyzer.feed_all(name, run.logs.lines(name));
  }
  const Delays full = analyzer.delays_for(app);
  EXPECT_EQ(full.am, rm_only.am);  // already-seen intervals are stable
  EXPECT_TRUE(full.total.has_value());
  EXPECT_TRUE(full.driver.has_value());
}

TEST(Incremental, UnknownAppQueryReturnsEmptyDelays) {
  IncrementalAnalyzer analyzer;
  const Delays delays = analyzer.delays_for(ApplicationId{1, 42});
  EXPECT_FALSE(delays.total.has_value());
  EXPECT_EQ(delays.app.id, 42);
}

// --- CRLF streaming/batch parity ---------------------------------------
//
// Regression: a live tail delivers the raw bytes of CRLF-terminated
// logs, while the batch readers strip the '\r' at read time.  feed()
// must strip it too, or every line's last token grows a carriage return
// and the two paths diverge.
TEST(Incremental, CrlfLinesMatchBatchDirectoryRead) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "sdc_incremental_crlf";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto run = small_run(2, 304);
  for (const auto& name : run.logs.stream_names()) {
    std::ofstream out(dir / name, std::ios::binary);
    for (const std::string& line : run.logs.lines(name)) {
      out << line << "\r\n";
    }
  }

  const AnalysisResult batch = SdChecker().analyze_directory(dir);
  IncrementalAnalyzer analyzer;
  for (const auto& name : run.logs.stream_names()) {
    // Read raw file bytes and split on '\n' only, keeping the '\r' —
    // exactly what a tail hands the analyzer.
    std::ifstream in(dir / name, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) analyzer.feed(name, line);
  }
  const AnalysisResult streamed = analyzer.snapshot();
  EXPECT_EQ(analysis_json(streamed), analysis_json(batch));
  EXPECT_EQ(streamed.lines_unparsed, batch.lines_unparsed);
}

// --- never-binding streams ---------------------------------------------
//
// Regression: the batch miner counts every extracted event in
// `events_total` whether or not it ever attributes to an application;
// the streaming path used to count only applied events, so a stream
// that never reveals an id made the two summaries diverge.
TEST(Incremental, UnboundStreamEventCountsMatchBatch) {
  logging::LogBundle bundle;
  bundle.append("rm.log",
                "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
                "resourcemanager.rmapp.RMAppImpl: "
                "application_1499100000000_0001 State change from NEW_SAVING "
                "to SUBMITTED on event = APP_NEW_SAVED");
  // An executor stream that never mentions an application or container
  // id: FIRST_LOG + FIRST_TASK extract but can never attribute.
  bundle.append("executor.log",
                "17/07/03 16:40:09 INFO CoarseGrainedExecutorBackend: "
                "Registered signal handlers");
  bundle.append("executor.log",
                "17/07/03 16:40:12 INFO CoarseGrainedExecutorBackend: Got "
                "assigned task 0");

  const AnalysisResult batch = SdChecker().analyze(bundle);
  IncrementalAnalyzer analyzer;
  for (const auto& name : bundle.stream_names()) {
    analyzer.feed_all(name, bundle.lines(name));
  }
  const AnalysisResult streamed = analyzer.snapshot();
  EXPECT_EQ(batch.events_unattributed, 2u);
  EXPECT_EQ(streamed.events_total, batch.events_total);
  EXPECT_EQ(streamed.events_unattributed, batch.events_unattributed);
  EXPECT_EQ(analysis_json(streamed), analysis_json(batch));
}

TEST(Incremental, ParkedCapDropsCountAndDiagnose) {
  MinerOptions options;
  options.parked_events_cap = 1;
  IncrementalAnalyzer analyzer(options);
  analyzer.feed("executor.log",
                "17/07/03 16:40:09 INFO CoarseGrainedExecutorBackend: "
                "Registered signal handlers");  // FIRST_LOG parks (1/1)
  analyzer.feed("executor.log",
                "17/07/03 16:40:12 INFO CoarseGrainedExecutorBackend: Got "
                "assigned task 0");  // FIRST_TASK over cap: dropped
  // Both events count as extracted and as pending (parked + dropped).
  EXPECT_EQ(analyzer.events_total(), 2u);
  EXPECT_EQ(analyzer.events_pending(), 2u);

  const auto diagnostics = analyzer.diagnostics();
  std::size_t unbound = 0;
  for (const auto& diagnostic : diagnostics) {
    if (diagnostic.kind == logging::DiagnosticKind::kUnboundStream) {
      ++unbound;
      EXPECT_EQ(diagnostic.stream, "executor.log");
      EXPECT_EQ(diagnostic.count, 1u);  // one drop
      EXPECT_NE(diagnostic.detail.find("parked-event cap (1)"),
                std::string::npos);
    }
  }
  EXPECT_EQ(unbound, 1u);
  EXPECT_EQ(analyzer.snapshot().diag_counts.of(
                logging::DiagnosticKind::kUnboundStream),
            1u);
}

// --- retirement --------------------------------------------------------

TEST(Incremental, RetirementFoldsIntoSnapshotExactly) {
  const auto run = small_run(4, 305);
  const AnalysisResult batch = SdChecker().analyze(run.logs);

  IncrementalAnalyzer analyzer;
  for (const auto& name : run.logs.stream_names()) {
    analyzer.feed_all(name, run.logs.lines(name));
  }
  // Everything is fed; every app's terminal transition has been mined.
  analyzer.advance_tick();
  analyzer.advance_tick();
  const std::size_t retired = analyzer.retire_terminal(1);
  EXPECT_GT(retired, 0u);
  EXPECT_EQ(analyzer.apps_retired(), retired);
  EXPECT_EQ(analyzer.apps_resident() + retired, batch.delays.size());

  // The snapshot folds retired rows back in at their app-ID position:
  // byte-identical to batch, and to the sharded finalize too.
  EXPECT_EQ(analysis_json(analyzer.snapshot()), analysis_json(batch));
  EXPECT_EQ(analysis_json(analyzer.snapshot(4)), analysis_json(batch));

  // delays_for answers from the retired cache.
  const ApplicationId app = analyzer.retired().begin()->first;
  EXPECT_EQ(analyzer.delays_for(app).total, batch.delays.at(app).total);

  // A late event for a retired app is dropped and counted, not applied.
  EXPECT_EQ(analyzer.events_late_dropped(), 0u);
  analyzer.feed("rm.log",
                "2017-07-03 19:00:00,000 INFO  org.apache.hadoop.yarn.server."
                "resourcemanager.rmapp.RMAppImpl: " +
                    app.str() +
                    " State change from NEW_SAVING to SUBMITTED on event = "
                    "APP_NEW_SAVED");
  EXPECT_EQ(analyzer.events_late_dropped(), 1u);
}

}  // namespace
}  // namespace sdc::checker
