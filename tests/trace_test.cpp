// Tests for the submission-trace generator.
#include <gtest/gtest.h>

#include <algorithm>

#include "trace/submission_trace.hpp"

namespace sdc::trace {
namespace {

TEST(Trace, CountAndOrdering) {
  TraceConfig config;
  config.count = 100;
  const auto submissions = generate_trace(config);
  ASSERT_EQ(submissions.size(), 100u);
  for (std::size_t i = 1; i < submissions.size(); ++i) {
    EXPECT_GE(submissions[i].at, submissions[i - 1].at);
  }
  EXPECT_EQ(submissions.front().at, config.start);
  EXPECT_EQ(submissions.front().workload_index, 0);
  EXPECT_EQ(submissions.back().workload_index, 99);
}

TEST(Trace, DeterministicForSeed) {
  TraceConfig config;
  config.count = 50;
  config.seed = 77;
  const auto a = generate_trace(config);
  const auto b = generate_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].at, b[i].at);
}

TEST(Trace, DifferentSeedsDiffer) {
  TraceConfig a_config;
  a_config.count = 50;
  a_config.seed = 1;
  TraceConfig b_config = a_config;
  b_config.seed = 2;
  const auto a = generate_trace(a_config);
  const auto b = generate_trace(b_config);
  int same = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i].at == b[i].at) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Trace, MeanInterarrivalRoughlyHonored) {
  TraceConfig config;
  config.count = 4000;
  config.mean_interarrival = seconds(4);
  const auto submissions = generate_trace(config);
  const double span_s =
      to_seconds(submissions.back().at - submissions.front().at);
  const double mean_gap = span_s / static_cast<double>(config.count - 1);
  EXPECT_NEAR(mean_gap, 4.0, 1.0);
}

TEST(Trace, BurstinessCreatesHeavyGaps) {
  TraceConfig config;
  config.count = 2000;
  config.mean_interarrival = seconds(4);
  config.burstiness_sigma = 1.1;
  const auto submissions = generate_trace(config);
  double max_gap = 0;
  std::size_t sub_second_gaps = 0;
  for (std::size_t i = 1; i < submissions.size(); ++i) {
    const double gap = to_seconds(submissions[i].at - submissions[i - 1].at);
    max_gap = std::max(max_gap, gap);
    if (gap < 1.0) ++sub_second_gaps;
  }
  EXPECT_GT(max_gap, 20.0);          // heavy tail
  EXPECT_GT(sub_second_gaps, 200u);  // bursts
}

TEST(Trace, CanonicalTraceSizes) {
  EXPECT_EQ(long_trace().size(), 2000u);
  EXPECT_EQ(short_trace().size(), 200u);
}

}  // namespace
}  // namespace sdc::trace
