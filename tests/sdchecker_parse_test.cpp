// Tests for SDchecker's first two stages: log4j line parsing and
// Table-I message extraction.
#include <gtest/gtest.h>

#include "sdchecker/extractor.hpp"
#include "sdchecker/parsed_line.hpp"

namespace sdc::checker {
namespace {

constexpr const char* kRmAppLine =
    "2017-07-03 16:40:00,123 INFO  "
    "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl: "
    "application_1499100000000_0007 State change from SUBMITTED to ACCEPTED "
    "on event = APP_ACCEPTED";

// --- parse_line -------------------------------------------------------------

TEST(ParseLine, FullLine) {
  const auto parsed = parse_line(kRmAppLine);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch_ms, 1'499'100'000'123);
  EXPECT_EQ(parsed->level, "INFO");
  EXPECT_EQ(short_class_name(parsed->logger), "RMAppImpl");
  EXPECT_TRUE(parsed->message.starts_with("application_1499100000000_0007"));
}

TEST(ParseLine, RejectsTruncatedAndGarbage) {
  EXPECT_FALSE(parse_line("").has_value());
  EXPECT_FALSE(parse_line("garbage").has_value());
  EXPECT_FALSE(parse_line("2017-07-03 16:40:00,123").has_value());
  EXPECT_FALSE(parse_line("2017-07-03 16:40:00,123 INFO ").has_value());
  // Stack-trace continuation lines are not log lines.
  EXPECT_FALSE(
      parse_line("\tat org.apache.spark.SparkContext.<init>(SparkContext"
                 ".scala:397)")
          .has_value());
  // Missing ": " separator.
  EXPECT_FALSE(
      parse_line("2017-07-03 16:40:00,123 INFO  org.example.NoSeparator")
          .has_value());
}

TEST(ParseLine, TruncatedTimestamps) {
  // ISO stamp cut mid-field, and a complete stamp with the line cut
  // right after it.
  EXPECT_FALSE(parse_line("2017-07-03 16:40:0").has_value());
  EXPECT_FALSE(parse_line("2017-07-03 16:40:00,12").has_value());
  EXPECT_FALSE(parse_line("2017-07-03 16:40:00,123 ").has_value());
  // Spark short stamp cut mid-field.
  EXPECT_FALSE(parse_line("17/07/03 16:40").has_value());
  EXPECT_FALSE(parse_line("17/07/03 16:4x:00 INFO X: y").has_value());
}

TEST(ParseLine, SeventeenCharSparkStampAtExactLineEnd) {
  // A valid 17-char Spark stamp that IS the whole line (truncated
  // write): nothing follows, so it must be rejected, not read past.
  EXPECT_FALSE(parse_line("17/07/03 16:40:00").has_value());
  // One space more, still no level/class.
  EXPECT_FALSE(parse_line("17/07/03 16:40:00 ").has_value());
  // Minimum viable short-stamp line parses.
  const auto ok = parse_line("17/07/03 16:40:00 INFO X: y");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->logger, "X");
  EXPECT_EQ(ok->message, "y");
}

TEST(ParseLine, GarbageLevelTokens) {
  // Levels are upper-case letter runs; lower-case, digits and
  // punctuation where the level should be are rejected.
  EXPECT_FALSE(
      parse_line("2017-07-03 16:40:00,123 info  a.b.C: msg").has_value());
  EXPECT_FALSE(
      parse_line("2017-07-03 16:40:00,123 42  a.b.C: msg").has_value());
  EXPECT_FALSE(
      parse_line("2017-07-03 16:40:00,123 [INFO]  a.b.C: msg").has_value());
  // A level with no text after it at all.
  EXPECT_FALSE(parse_line("2017-07-03 16:40:00,123 INFO").has_value());
}

TEST(ParseLine, EmptyLoggerBeforeSeparator) {
  // A ": " separator at position 0 of the remainder must not yield an
  // empty logger class.
  EXPECT_FALSE(
      parse_line("2017-07-03 16:40:00,123 INFO : message").has_value());
  EXPECT_FALSE(
      parse_line("17/07/03 16:40:00 WARN : message").has_value());
}

TEST(ParseLine, WarnLevel) {
  const auto parsed = parse_line(
      "2017-07-03 16:40:00,000 WARN  a.b.C: something odd");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->level, "WARN");
  EXPECT_EQ(parsed->message, "something odd");
}

TEST(ParseLine, ShortClassName) {
  EXPECT_EQ(short_class_name("a.b.c.D"), "D");
  EXPECT_EQ(short_class_name("Plain"), "Plain");
}

// --- id discovery -----------------------------------------------------------

TEST(Extractor, FindsApplicationIdDirect) {
  const auto app =
      find_application_id("app application_1499100000000_0042 accepted");
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(app->id, 42);
}

TEST(Extractor, FindsApplicationIdViaAttempt) {
  const auto app =
      find_application_id("ApplicationAttemptId: appattempt_1499100000000_"
                          "0042_000001");
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(app->id, 42);
  EXPECT_EQ(app->cluster_ts, 1'499'100'000'000);
}

TEST(Extractor, FindsContainerId) {
  const auto container = find_container_id(
      "Assigned container container_1499100000000_0042_01_000003 of capacity");
  ASSERT_TRUE(container.has_value());
  EXPECT_EQ(container->app.id, 42);
  EXPECT_EQ(container->id, 3);
}

TEST(Extractor, NoIdsInPlainText) {
  EXPECT_FALSE(find_application_id("no ids at all").has_value());
  EXPECT_FALSE(find_container_id("container-free message").has_value());
}

// --- transition phrasing -------------------------------------------------------

TEST(Extractor, ParseTransitionVariants) {
  const auto a = parse_transition("State change from SUBMITTED to ACCEPTED "
                                  "on event = APP_ACCEPTED");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->from, "SUBMITTED");
  EXPECT_EQ(a->to, "ACCEPTED");

  const auto b = parse_transition("Container Transitioned from NEW to "
                                  "ALLOCATED");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->from, "NEW");
  EXPECT_EQ(b->to, "ALLOCATED");

  const auto c = parse_transition(
      "Container container_1_2_3_4 transitioned from LOCALIZING to SCHEDULED");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->from, "LOCALIZING");
  EXPECT_EQ(c->to, "SCHEDULED");

  EXPECT_FALSE(parse_transition("no transition here").has_value());
  EXPECT_FALSE(parse_transition("from only").has_value());
}

// --- line classification ----------------------------------------------------------

TEST(Extractor, ClassifyByLoggerClass) {
  const auto classify = [](const char* line) {
    const auto parsed = parse_line(line);
    EXPECT_TRUE(parsed.has_value()) << line;
    return classify_line(*parsed);
  };
  EXPECT_EQ(classify(kRmAppLine), StreamKind::kResourceManager);
  EXPECT_EQ(classify("2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn."
                     "server.nodemanager.containermanager.container."
                     "ContainerImpl: Container container_1_2_3_4 transitioned "
                     "from NEW to LOCALIZING"),
            StreamKind::kNodeManager);
  EXPECT_EQ(classify("2017-07-03 16:40:00,123 INFO  org.apache.spark.deploy."
                     "yarn.ApplicationMaster: Registered signal handlers"),
            StreamKind::kDriver);
  EXPECT_EQ(classify("2017-07-03 16:40:00,123 INFO  org.apache.spark.executor."
                     "CoarseGrainedExecutorBackend: Started daemon"),
            StreamKind::kExecutor);
  EXPECT_EQ(classify("2017-07-03 16:40:00,123 INFO  org.apache.hadoop.mapred."
                     "YarnChild: YarnChild starting"),
            StreamKind::kExecutor);
  EXPECT_EQ(classify("2017-07-03 16:40:00,123 INFO  com.example.Other: x"),
            StreamKind::kUnknown);
}

// --- event extraction (Table I) ------------------------------------------------------

std::optional<SchedEvent> extract(const std::string& line) {
  const auto parsed = parse_line(line);
  if (!parsed) return std::nullopt;
  return extract_event(*parsed, "test.log", 1);
}

std::string rm_container_line(const std::string& from, const std::string& to) {
  return "2017-07-03 16:40:01,000 INFO  org.apache.hadoop.yarn.server."
         "resourcemanager.rmcontainer.RMContainerImpl: "
         "container_1499100000000_0007_01_000002 Container Transitioned from " +
         from + " to " + to;
}

std::string nm_container_line(const std::string& from, const std::string& to) {
  return "2017-07-03 16:40:02,000 INFO  org.apache.hadoop.yarn.server."
         "nodemanager.containermanager.container.ContainerImpl: Container "
         "container_1499100000000_0007_01_000002 transitioned from " +
         from + " to " + to;
}

TEST(Extractor, ShortMessagePrefilterIsConservative) {
  // The skip bound is derived from the rule table: no rule's predicate
  // can fire on a message shorter than its token (plus the minimal
  // "from X to " scaffolding for transitions).
  const std::size_t bound = min_rule_message_len();
  EXPECT_GT(bound, 0u);
  for (const ExtractorRule& rule : extractor_rules()) {
    std::size_t need = rule.match == RuleMatch::kTransitionTo
                           ? rule.token.size() + 10
                           : rule.token.size();
    need = std::max(need, rule.also.size());
    EXPECT_LE(bound, need) << rule.token;
  }
  // The shortest real rule message still extracts...
  const auto end_allo = extract(
      "2017-07-03 16:40:00,000 INFO  org.apache.spark.deploy.yarn."
      "YarnAllocator: END_ALLO");
  ASSERT_TRUE(end_allo.has_value());
  EXPECT_EQ(end_allo->kind, EventKind::kEndAllo);
  // ...while a one-shorter message on the same class yields nothing.
  EXPECT_FALSE(extract("2017-07-03 16:40:00,000 INFO  org.apache.spark."
                       "deploy.yarn.YarnAllocator: END_ALL")
                   .has_value());
}

TEST(Extractor, RmAppEvents) {
  const auto submitted = extract(
      "2017-07-03 16:40:00,000 INFO  org.apache.hadoop.yarn.server."
      "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0007 State "
      "change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED");
  ASSERT_TRUE(submitted.has_value());
  EXPECT_EQ(submitted->kind, EventKind::kAppSubmitted);
  ASSERT_TRUE(submitted->app.has_value());
  EXPECT_EQ(submitted->app->id, 7);

  const auto accepted = extract(kRmAppLine);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->kind, EventKind::kAppAccepted);

  const auto registered = extract(
      "2017-07-03 16:40:05,000 INFO  org.apache.hadoop.yarn.server."
      "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0007 State "
      "change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED");
  ASSERT_TRUE(registered.has_value());
  EXPECT_EQ(registered->kind, EventKind::kAttemptRegistered);
}

TEST(Extractor, RmContainerEvents) {
  EXPECT_EQ(extract(rm_container_line("NEW", "ALLOCATED"))->kind,
            EventKind::kContainerAllocated);
  EXPECT_EQ(extract(rm_container_line("ALLOCATED", "ACQUIRED"))->kind,
            EventKind::kContainerAcquired);
  EXPECT_EQ(extract(rm_container_line("ACQUIRED", "RUNNING"))->kind,
            EventKind::kRmContainerRunning);
  EXPECT_EQ(extract(rm_container_line("RUNNING", "COMPLETED"))->kind,
            EventKind::kRmContainerCompleted);
  EXPECT_EQ(extract(rm_container_line("ACQUIRED", "RELEASED"))->kind,
            EventKind::kRmContainerReleased);
  const auto allocated = extract(rm_container_line("NEW", "ALLOCATED"));
  ASSERT_TRUE(allocated->container.has_value());
  EXPECT_EQ(allocated->container->id, 2);
  ASSERT_TRUE(allocated->app.has_value());
  EXPECT_EQ(allocated->app->id, 7);
}

TEST(Extractor, NmContainerEvents) {
  EXPECT_EQ(extract(nm_container_line("NEW", "LOCALIZING"))->kind,
            EventKind::kNmLocalizing);
  EXPECT_EQ(extract(nm_container_line("LOCALIZING", "SCHEDULED"))->kind,
            EventKind::kNmScheduled);
  EXPECT_EQ(extract(nm_container_line("SCHEDULED", "RUNNING"))->kind,
            EventKind::kNmRunning);
  EXPECT_EQ(extract(nm_container_line("RUNNING", "EXITED_WITH_SUCCESS"))->kind,
            EventKind::kNmExited);
}

TEST(Extractor, SparkDriverEvents) {
  const auto reg = extract(
      "2017-07-03 16:40:07,000 INFO  org.apache.spark.deploy.yarn."
      "ApplicationMaster: Registering the ApplicationMaster with the "
      "ResourceManager");
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->kind, EventKind::kDriverRegister);

  const auto start = extract(
      "2017-07-03 16:40:07,100 INFO  org.apache.spark.deploy.yarn."
      "YarnAllocator: SDC START_ALLO requesting 4 executor containers");
  ASSERT_TRUE(start.has_value());
  EXPECT_EQ(start->kind, EventKind::kStartAllo);

  const auto end = extract(
      "2017-07-03 16:40:09,000 INFO  org.apache.spark.deploy.yarn."
      "YarnAllocator: SDC END_ALLO all 4 requested containers allocated");
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(end->kind, EventKind::kEndAllo);
}

TEST(Extractor, MrMasterRegisterCounts) {
  const auto reg = extract(
      "2017-07-03 16:40:07,000 INFO  org.apache.hadoop.mapreduce.v2.app."
      "MRAppMaster: Registering with the ResourceManager");
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->kind, EventKind::kDriverRegister);
}

TEST(Extractor, ExecutorFirstTask) {
  const auto task = extract(
      "2017-07-03 16:40:12,000 INFO  org.apache.spark.executor."
      "CoarseGrainedExecutorBackend: Got assigned task 0");
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->kind, EventKind::kExecutorFirstTask);
}

TEST(Extractor, NonSchedulingLinesIgnored) {
  EXPECT_FALSE(extract("2017-07-03 16:40:00,000 INFO  org.apache.spark."
                       "executor.Executor: Running task 0.0 in stage 0.0")
                   .has_value());
  EXPECT_FALSE(extract("2017-07-03 16:40:00,000 INFO  com.example.Noise: "
                       "unrelated message with application_1499100000000_0001")
                   .has_value());
}

// --- event metadata ------------------------------------------------------------------

TEST(Events, Table1Numbers) {
  EXPECT_EQ(table1_number(EventKind::kAppSubmitted), 1);
  EXPECT_EQ(table1_number(EventKind::kExecutorFirstTask), 14);
  EXPECT_EQ(table1_number(EventKind::kRmContainerReleased), 0);
}

TEST(Events, ContainerScoping) {
  EXPECT_TRUE(is_container_event(EventKind::kContainerAllocated));
  EXPECT_TRUE(is_container_event(EventKind::kExecutorFirstLog));
  EXPECT_FALSE(is_container_event(EventKind::kAppSubmitted));
  EXPECT_FALSE(is_container_event(EventKind::kDriverRegister));
  EXPECT_FALSE(is_container_event(EventKind::kStartAllo));
}

}  // namespace
}  // namespace sdc::checker
