// Tests for the seeded corpus mutator and its self-check harness: the
// analyzer never crashes on any mutant, the identity mutation is
// event-for-event identical to the baseline, and every destructive
// class surfaces a nonzero count of its expected diagnostic kind.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "logging/log_bundle.hpp"
#include "sdchecker/corpus_mutator.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {
namespace {

std::filesystem::path corpus_dir() {
  for (std::filesystem::path dir = std::filesystem::current_path();
       !dir.empty() && dir != dir.root_path(); dir = dir.parent_path()) {
    const auto candidate = dir / "testdata" / "golden_small";
    if (std::filesystem::is_directory(candidate)) return candidate;
  }
  return std::filesystem::path("testdata") / "golden_small";
}

const logging::LogBundle& golden() {
  static const logging::LogBundle bundle =
      logging::LogBundle::read_from_directory(corpus_dir());
  return bundle;
}

bool bundles_equal(const logging::LogBundle& a, const logging::LogBundle& b) {
  if (a.stream_names() != b.stream_names()) return false;
  for (const std::string& name : a.stream_names()) {
    if (a.lines(name) != b.lines(name)) return false;
  }
  return true;
}

TEST(CorpusMutator, ClassNamesRoundTrip) {
  const auto classes = all_mutation_classes();
  ASSERT_EQ(classes.size(), kMutationClassCount);
  EXPECT_EQ(classes.front(), MutationClass::kIdentity);
  for (const MutationClass cls : classes) {
    const auto name = mutation_class_name(cls);
    EXPECT_NE(name, "?");
    const auto parsed = mutation_class_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(mutation_class_from_name("no-such-class").has_value());
}

TEST(CorpusMutator, DeterministicForSameSeed) {
  for (const MutationClass cls : all_mutation_classes()) {
    const auto a = apply_mutation(golden(), cls, 7);
    const auto b = apply_mutation(golden(), cls, 7);
    EXPECT_TRUE(bundles_equal(a, b)) << mutation_class_name(cls);
  }
}

TEST(CorpusMutator, IdentityIsByteIdentical) {
  const auto mutated =
      apply_mutation(golden(), MutationClass::kIdentity, 42);
  EXPECT_TRUE(bundles_equal(golden(), mutated));
}

TEST(CorpusMutator, NeverCrashesAcrossSeedsAndClasses) {
  // The never-crash contract, over several seeds.  fuzz_corpus captures
  // any analyzer exception as a per-case failure; none may occur.
  for (const std::uint64_t seed : {1ull, 42ull, 20170703ull}) {
    const auto results = fuzz_corpus(golden(), seed, all_mutation_classes());
    ASSERT_EQ(results.size(), kMutationClassCount);
    for (const FuzzCaseResult& result : results) {
      EXPECT_FALSE(result.crashed)
          << mutation_class_name(result.cls) << " seed " << seed << ": "
          << result.error;
    }
  }
}

TEST(CorpusMutator, IdentityMutationEventIdenticalToBaseline) {
  const SdChecker checker;
  const AnalysisResult baseline = checker.analyze(golden());
  const AnalysisResult identical =
      checker.analyze(apply_mutation(golden(), MutationClass::kIdentity, 42));
  EXPECT_EQ(events_csv(baseline), events_csv(identical));
  EXPECT_EQ(delays_csv(baseline), delays_csv(identical));
  EXPECT_EQ(baseline.events_total, identical.events_total);
  EXPECT_EQ(identical.diag_counts.total(), 0u);
}

TEST(CorpusMutator, DestructiveClassesYieldClassCorrectDiagnostics) {
  const auto results = fuzz_corpus(golden(), 42, all_mutation_classes());
  ASSERT_EQ(results.size(), kMutationClassCount);
  for (const FuzzCaseResult& result : results) {
    EXPECT_TRUE(result.ok) << mutation_class_name(result.cls);
    const auto kind = expected_diagnostic(result.cls);
    if (!kind) continue;  // identity
    EXPECT_GT(result.expected_kind_count, 0u)
        << mutation_class_name(result.cls) << " should surface "
        << logging::diagnostic_kind_name(*kind);
  }
}

TEST(CorpusMutator, DiagnosticsSurfaceInAnalysisJson) {
  // The per-kind counts of a mutant's analysis are visible (nonzero) in
  // the machine-readable export.
  const SdChecker checker;
  for (const MutationClass cls :
       {MutationClass::kGarbageBytes, MutationClass::kRotateSplit,
        MutationClass::kClockSkew}) {
    const auto analysis = checker.analyze(apply_mutation(golden(), cls, 42));
    const auto kind = expected_diagnostic(cls);
    ASSERT_TRUE(kind.has_value());
    EXPECT_GT(analysis.diag_counts.of(*kind), 0u) << mutation_class_name(cls);
    const std::string json = analysis_json(analysis);
    const std::string key =
        '"' + std::string(logging::diagnostic_kind_name(*kind)) + "\":";
    ASSERT_NE(json.find(key), std::string::npos) << json.substr(0, 200);
    // The count right after the key must not be zero.
    const std::string zero = key + " 0";
    EXPECT_EQ(json.find(zero), std::string::npos) << mutation_class_name(cls);
  }
}

TEST(CorpusMutator, MutantsRoundTripThroughDirectoryIo) {
  // Garbage bytes (including NULs) must survive write_to_directory /
  // read_from_directory, so a replayed mutant reproduces the in-memory
  // diagnostics exactly.
  const auto mutated =
      apply_mutation(golden(), MutationClass::kGarbageBytes, 42);
  const auto dir =
      std::filesystem::temp_directory_path() / "sdc_mutator_roundtrip";
  std::filesystem::remove_all(dir);
  mutated.write_to_directory(dir);
  const auto reread = logging::LogBundle::read_from_directory(dir);
  EXPECT_TRUE(bundles_equal(mutated, reread));
  const SdChecker checker;
  EXPECT_EQ(checker.analyze(mutated).diag_counts.of(
                logging::DiagnosticKind::kBinaryGarbage),
            checker.analyze(reread).diag_counts.of(
                logging::DiagnosticKind::kBinaryGarbage));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sdc::checker
