// Performance guards: coarse ceilings that catch order-of-magnitude
// regressions in the hot paths (parser, miner, engine).  Thresholds are
// deliberately loose (10x headroom on a slow CI box).
#include <gtest/gtest.h>

#include <chrono>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "simcore/engine.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TEST(PerfGuard, MinerHandles30kLinesQuickly) {
  harness::ScenarioConfig scenario;
  scenario.seed = 701;
  for (int i = 0; i < 280; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1) + seconds(4) * i;
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto sim = harness::run_scenario(scenario);
  ASSERT_GT(sim.logs.total_lines(), 25'000u);

  const auto start = Clock::now();
  const auto analysis = checker::SdChecker({.threads = 2}).analyze(sim.logs);
  const double elapsed = seconds_since(start);
  EXPECT_EQ(analysis.timelines.size(), 280u);
  // ~30k lines in, say, well under 2 s even on a slow box (measured ~20 ms).
  EXPECT_LT(elapsed, 2.0);
}

TEST(PerfGuard, EngineSustainsHundredsOfThousandsOfEventsPerSecond) {
  sim::Engine engine;
  std::uint64_t sum = 0;
  for (int i = 0; i < 200'000; ++i) {
    engine.schedule_at(millis(i % 10'000), [&sum] { ++sum; });
  }
  const auto start = Clock::now();
  engine.run();
  const double elapsed = seconds_since(start);
  EXPECT_EQ(sum, 200'000u);
  EXPECT_LT(elapsed, 2.0);  // measured ~70 ms
}

TEST(PerfGuard, EndToEndScenarioUnderASecondPerHundredJobs) {
  harness::ScenarioConfig scenario;
  scenario.seed = 702;
  for (int i = 0; i < 100; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1) + seconds(4) * i;
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto start = Clock::now();
  const auto sim = harness::run_scenario(scenario);
  const double elapsed = seconds_since(start);
  EXPECT_EQ(sim.jobs.size(), 100u);
  EXPECT_LT(elapsed, 5.0);  // measured ~30 ms
}

}  // namespace
}  // namespace sdc
