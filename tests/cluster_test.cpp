// Unit tests for src/cluster: resource arithmetic, node accounting,
// interference curves, HDFS transfer model, cluster aggregation.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/hdfs.hpp"
#include "cluster/interference.hpp"
#include "cluster/node.hpp"
#include "cluster/resource.hpp"
#include "simcore/engine.hpp"

namespace sdc::cluster {
namespace {

// --- Resource ----------------------------------------------------------------

TEST(Resource, Arithmetic) {
  const Resource a{4, 1024};
  const Resource b{2, 512};
  EXPECT_EQ(a + b, (Resource{6, 1536}));
  EXPECT_EQ(a - b, (Resource{2, 512}));
  Resource c = a;
  c += b;
  EXPECT_EQ(c, (Resource{6, 1536}));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Resource, FitsRequiresBothDimensions) {
  const Resource cap{8, 4096};
  EXPECT_TRUE(cap.fits({8, 4096}));
  EXPECT_TRUE(cap.fits({1, 1}));
  EXPECT_FALSE(cap.fits({9, 1}));
  EXPECT_FALSE(cap.fits({1, 5000}));
}

TEST(Resource, StrFormat) {
  EXPECT_EQ((Resource{8, 4096}).str(), "<vcores:8, memory:4096MB>");
}

// --- Node ---------------------------------------------------------------------

TEST(Node, AllocateAndRelease) {
  Node node(NodeId{1}, Resource{8, 8192});
  EXPECT_TRUE(node.try_allocate({4, 4096}));
  EXPECT_EQ(node.used(), (Resource{4, 4096}));
  EXPECT_EQ(node.available(), (Resource{4, 4096}));
  EXPECT_TRUE(node.try_allocate({4, 4096}));
  EXPECT_FALSE(node.try_allocate({1, 1}));
  node.release({4, 4096});
  EXPECT_TRUE(node.try_allocate({2, 1024}));
}

TEST(Node, CpuUtilization) {
  Node node(NodeId{1}, Resource{10, 1000});
  EXPECT_DOUBLE_EQ(node.cpu_utilization(), 0.0);
  ASSERT_TRUE(node.try_allocate({5, 100}));
  EXPECT_DOUBLE_EQ(node.cpu_utilization(), 0.5);
}

TEST(Node, IoFlowCounterNeverNegative) {
  Node node(NodeId{1}, kNodeCapacity);
  node.remove_io_flow();
  EXPECT_EQ(node.io_flows(), 0);
  node.add_io_flow();
  node.add_io_flow();
  EXPECT_EQ(node.io_flows(), 2);
  node.remove_io_flow();
  EXPECT_EQ(node.io_flows(), 1);
}

TEST(Node, OpportunisticQueueCounter) {
  Node node(NodeId{1}, kNodeCapacity);
  node.enqueue_opportunistic();
  node.enqueue_opportunistic();
  EXPECT_EQ(node.queued_opportunistic(), 2);
  node.dequeue_opportunistic();
  node.dequeue_opportunistic();
  node.dequeue_opportunistic();
  EXPECT_EQ(node.queued_opportunistic(), 0);
}

// --- InterferenceModel ---------------------------------------------------------

TEST(Interference, IdleClusterHasUnitMultipliers) {
  InterferenceModel model;
  EXPECT_DOUBLE_EQ(model.io_transfer_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(model.io_control_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(model.cpu_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(model.cpu_localization_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(model.execution_multiplier(), 1.0);
}

TEST(Interference, MultipliersMonotoneInLoad) {
  InterferenceModel model;
  double prev_io = 1.0;
  double prev_cpu = 1.0;
  for (double units : {5.0, 20.0, 50.0, 100.0}) {
    InterferenceModel m;
    m.add_io_units(units);
    m.add_cpu_units(units);
    EXPECT_GT(m.io_transfer_multiplier(), prev_io);
    EXPECT_GT(m.cpu_multiplier(), prev_cpu);
    prev_io = m.io_transfer_multiplier();
    prev_cpu = m.cpu_multiplier();
  }
}

TEST(Interference, CalibrationAnchorsMatchPaperBands) {
  // Fig. 12-b anchor: raw transfer multiplier at 100 dfsIO maps; the
  // *measured* localization slowdown (~9.4x median in the paper) is
  // diluted by the fixed localization overhead and the elevated
  // trace baseline, so the raw curve sits higher.
  InterferenceModel io_heavy;
  io_heavy.add_io_units(100);
  EXPECT_NEAR(io_heavy.io_transfer_multiplier(), 12.5, 2.0);
  // Fig. 12-c anchor: raw control multiplier; the measured executor
  // slowdown lands in the paper's 2.5-3.5x band after window-start shift.
  EXPECT_GE(io_heavy.io_control_multiplier(), 3.3);
  EXPECT_LE(io_heavy.io_control_multiplier(), 5.0);
  // Fig. 13-b/c: driver 2.9x / executor 2.4x at 16 Kmeans apps.
  InterferenceModel cpu_heavy;
  cpu_heavy.add_cpu_units(16);
  EXPECT_GE(cpu_heavy.cpu_multiplier(), 2.0);
  EXPECT_LE(cpu_heavy.cpu_multiplier(), 3.2);
  // Fig. 13-d: localization only ~1.4x under CPU load.
  EXPECT_GE(cpu_heavy.cpu_localization_multiplier(), 1.2);
  EXPECT_LE(cpu_heavy.cpu_localization_multiplier(), 1.6);
}

TEST(Interference, RemoveClampsAtZero) {
  InterferenceModel model;
  model.add_io_units(3);
  model.remove_io_units(10);
  EXPECT_DOUBLE_EQ(model.transfer_units(), 0.0);
  EXPECT_DOUBLE_EQ(model.control_units(), 0.0);
  EXPECT_DOUBLE_EQ(model.io_transfer_multiplier(), 1.0);
  model.add_cpu_units(1);
  model.remove_cpu_units(5);
  EXPECT_DOUBLE_EQ(model.cpu_units(), 0.0);
}

TEST(Interference, ScanUnitsHitControlChannelHarderThanTransfer) {
  // The Fig. 5 mechanism: input scans degrade in-application (control)
  // paths strongly but localization (transfer) only mildly.
  InterferenceModel model;
  model.add_scan_units(/*control=*/60.0, /*transfer=*/3.0);
  EXPECT_GT(model.io_control_multiplier(), 2.5);
  EXPECT_LT(model.io_transfer_multiplier(), 2.0);
  model.remove_scan_units(60.0, 3.0);
  EXPECT_DOUBLE_EQ(model.io_control_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(model.io_transfer_multiplier(), 1.0);
}

TEST(Interference, DfsioHitsBothChannels) {
  InterferenceModel model;
  model.add_io_units(100);
  EXPECT_DOUBLE_EQ(model.transfer_units(), 100.0);
  EXPECT_DOUBLE_EQ(model.control_units(), 100.0);
}

// --- HdfsModel ------------------------------------------------------------------

TEST(Hdfs, ZeroSizeIsFree) {
  HdfsModel hdfs;
  EXPECT_EQ(hdfs.expected_transfer(0, 1.0), 0);
  EXPECT_EQ(hdfs.block_count(0), 0);
}

TEST(Hdfs, CalibrationAnchorsMatchFig8) {
  HdfsModel hdfs;
  // ~0.5 s for the default 500 MB package.
  const double t500 = to_seconds(hdfs.expected_transfer(500, 1.0));
  EXPECT_NEAR(t500, 0.5, 0.2);
  // ~23 s for an 8 GB localized file.
  const double t8g = to_seconds(hdfs.expected_transfer(8 * 1024, 1.0));
  EXPECT_NEAR(t8g, 23.0, 4.0);
}

TEST(Hdfs, TransferMonotoneInSizeAndContention) {
  HdfsModel hdfs;
  SimDuration prev = 0;
  for (double mb : {100.0, 500.0, 2048.0, 8192.0}) {
    const SimDuration t = hdfs.expected_transfer(mb, 1.0);
    EXPECT_GT(t, prev);
    prev = t;
    EXPECT_GT(hdfs.expected_transfer(mb, 5.0), t);
  }
}

TEST(Hdfs, SampleCentersOnExpected) {
  HdfsModel hdfs;
  Rng rng(3);
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sum += to_seconds(hdfs.sample_transfer(1024, 1.0, rng));
  }
  const double mean = sum / n;
  const double expected = to_seconds(hdfs.expected_transfer(1024, 1.0));
  EXPECT_NEAR(mean, expected, expected * 0.15);
}

TEST(Hdfs, BlockCountCeils) {
  HdfsModel hdfs;  // 128 MB blocks
  EXPECT_EQ(hdfs.block_count(1), 1);
  EXPECT_EQ(hdfs.block_count(128), 1);
  EXPECT_EQ(hdfs.block_count(129), 2);
  EXPECT_EQ(hdfs.block_count(2048), 16);
}

// --- Cluster ---------------------------------------------------------------------

TEST(Cluster, BuildsConfiguredWorkerCount) {
  sim::Engine engine;
  ClusterConfig config;
  config.worker_nodes = 5;
  Cluster cluster(engine, config);
  EXPECT_EQ(cluster.node_count(), 5u);
  EXPECT_EQ(cluster.node(0).id().index, 1);
  EXPECT_EQ(cluster.node(4).id().index, 5);
  EXPECT_EQ(cluster.nodes().size(), 5u);
}

TEST(Cluster, AggregateUtilization) {
  sim::Engine engine;
  ClusterConfig config;
  config.worker_nodes = 2;
  config.node_capacity = {10, 1000};
  Cluster cluster(engine, config);
  EXPECT_DOUBLE_EQ(cluster.cluster_cpu_utilization(), 0.0);
  ASSERT_TRUE(cluster.node(0).try_allocate({10, 100}));
  EXPECT_DOUBLE_EQ(cluster.cluster_cpu_utilization(), 0.5);
  EXPECT_EQ(cluster.total_capacity(), (Resource{20, 2000}));
  EXPECT_EQ(cluster.total_used(), (Resource{10, 100}));
}

}  // namespace
}  // namespace sdc::cluster
