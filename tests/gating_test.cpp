// Tests for Spark's task-scheduling gate (§IV-B): tasks start only after
// user init completes AND >= minRegisteredResourcesRatio of executors
// registered.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

checker::AggregateReport run_ratio(double ratio, std::int32_t executors,
                                   std::uint64_t seed = 1001, int jobs = 10) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 8 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, executors);
    plan.app.min_registered_ratio = ratio;
    // Make registration the binding constraint (instant user init).
    plan.app.files_opened = 0;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto analysis =
      checker::SdChecker().analyze(harness::run_scenario(scenario).logs);
  return analysis.aggregate;
}

TEST(Gating, LowerRatioStartsTasksEarlier) {
  // With user init out of the way, waiting for 100% of 16 executors takes
  // visibly longer than waiting for 30%.
  const auto strict = run_ratio(1.0, 16);
  const auto lax = run_ratio(0.3, 16);
  EXPECT_GT(strict.total.median(), lax.total.median() + 0.5);
  EXPECT_GT(strict.executor.median(), lax.executor.median() + 0.5);
}

TEST(Gating, RatioZeroStillWaitsForOneExecutor) {
  // The gate is clamped to at least one registered executor — tasks can
  // never start with nobody to run them.
  const auto report = run_ratio(0.0, 4, 1002, 5);
  EXPECT_EQ(report.total.size(), 5u);
  for (const double v : report.total.samples()) EXPECT_GT(v, 0.0);
}

TEST(Gating, UserInitDominatesWhenSlowerThanRegistration) {
  // With 8 opened files (the SQL case), the gate is init-bound: making
  // the ratio stricter barely moves the total.
  const auto build = [](double ratio) {
    harness::ScenarioConfig scenario;
    scenario.seed = 1003;
    for (int i = 0; i < 8; ++i) {
      harness::SparkSubmissionPlan plan;
      plan.at = seconds(1 + 8 * i);
      plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
      plan.app.min_registered_ratio = ratio;
      scenario.spark_jobs.push_back(std::move(plan));
    }
    return checker::SdChecker()
        .analyze(harness::run_scenario(scenario).logs)
        .aggregate.total.median();
  };
  const double strict = build(1.0);
  const double lax = build(0.5);
  EXPECT_NEAR(strict, lax, 1.2);
}

}  // namespace
}  // namespace sdc
