// Unit tests for src/common: ids, time, rng, stats, strings, thread pool.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/flat_hash_map.hpp"
#include "common/flat_map.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace sdc {
namespace {

// --- SimTime -----------------------------------------------------------

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(millis(1), 1000);
  EXPECT_EQ(seconds(1), 1'000'000);
  EXPECT_EQ(to_millis(millis(1234)), 1234);
  EXPECT_EQ(to_millis(micros(999)), 0);
  EXPECT_EQ(to_millis(micros(1000)), 1);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_EQ(from_millis(42), micros(42'000));
}

TEST(SimTime, NegativeRoundsTowardNegativeInfinity) {
  EXPECT_EQ(to_millis(micros(-1)), -1);
  EXPECT_EQ(to_millis(micros(-1000)), -1);
  EXPECT_EQ(to_millis(micros(-1001)), -2);
}

// --- ApplicationId / ContainerId / NodeId -------------------------------

TEST(Ids, ApplicationIdRoundTrip) {
  const ApplicationId id{1'499'100'000'000, 7};
  EXPECT_EQ(id.str(), "application_1499100000000_0007");
  const auto parsed = ApplicationId::parse(id.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);
}

TEST(Ids, ApplicationIdParseRejectsGarbage) {
  EXPECT_FALSE(ApplicationId::parse("application_x_1").has_value());
  EXPECT_FALSE(ApplicationId::parse("application_123").has_value());
  EXPECT_FALSE(ApplicationId::parse("app_123_1").has_value());
  EXPECT_FALSE(ApplicationId::parse("application_123_1junk").has_value());
  EXPECT_FALSE(ApplicationId::parse("").has_value());
}

TEST(Ids, ContainerIdRoundTrip) {
  const ContainerId id{{1'499'100'000'000, 12}, 1, 3};
  EXPECT_EQ(id.str(), "container_1499100000000_0012_01_000003");
  const auto parsed = ContainerId::parse(id.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);
}

TEST(Ids, ContainerIdAmConvention) {
  EXPECT_TRUE((ContainerId{{1, 1}, 1, 1}).is_am());
  EXPECT_FALSE((ContainerId{{1, 1}, 1, 2}).is_am());
}

TEST(Ids, ContainerIdParseRejectsGarbage) {
  EXPECT_FALSE(ContainerId::parse("container_1_1_1").has_value());
  EXPECT_FALSE(ContainerId::parse("container_a_b_c_d").has_value());
}

TEST(Ids, NodeIdRoundTrip) {
  const NodeId node{3};
  EXPECT_EQ(node.hostname(), "node03.cluster");
  EXPECT_EQ(node.str(), "node03.cluster:45454");
  const auto parsed = NodeId::parse("node03.cluster:45454");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->index, 3);
  const auto bare = NodeId::parse("node03.cluster");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->index, 3);
}

TEST(Ids, OrderingIsLexicographicByFields) {
  const ApplicationId a{100, 1};
  const ApplicationId b{100, 2};
  const ApplicationId c{200, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

// --- Rng ----------------------------------------------------------------

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(99);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, LognormalMedianRoughlyCorrect) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) samples.push_back(rng.lognormal(100.0, 0.5));
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median, 100.0, 5.0);
}

TEST(Rng, LognormalDurationPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal_duration(millis(500), 0.4), 0);
  }
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, NormalClampedRespectsFloor) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal_clamped(0.0, 10.0, -1.0), -1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --- SampleSet -----------------------------------------------------------

TEST(SampleSet, BasicMoments) {
  SampleSet set;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) set.add(v);
  EXPECT_DOUBLE_EQ(set.mean(), 5.0);
  EXPECT_NEAR(set.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(set.min(), 2.0);
  EXPECT_DOUBLE_EQ(set.max(), 9.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet set;
  for (int i = 1; i <= 5; ++i) set.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(set.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(set.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(set.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(set.percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(set.percentile(12.5), 1.5);
}

TEST(SampleSet, PercentileAfterLateAdd) {
  SampleSet set;
  set.add(10.0);
  EXPECT_DOUBLE_EQ(set.median(), 10.0);
  set.add(20.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(set.median(), 15.0);
}

TEST(SampleSet, EmptyThrowsOnQuantiles) {
  SampleSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_THROW((void)set.percentile(50), std::out_of_range);
  EXPECT_THROW((void)set.min(), std::out_of_range);
  EXPECT_DOUBLE_EQ(set.mean(), 0.0);
  EXPECT_DOUBLE_EQ(set.stddev(), 0.0);
}

TEST(SampleSet, CdfMonotone) {
  SampleSet set;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) set.add(rng.uniform(0, 100));
  const auto cdf = set.cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LE(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.front().second, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SampleSet, StddevOfSingleSampleIsZero) {
  SampleSet set;
  set.add(42.0);
  EXPECT_DOUBLE_EQ(set.stddev(), 0.0);
}

// --- strings --------------------------------------------------------------

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc\t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("application_1_2", "application_"));
  EXPECT_FALSE(starts_with("app", "application_"));
}

TEST(Strings, FindTokenWithPrefix) {
  EXPECT_EQ(find_token_with_prefix(
                "allocated container_123_0001_01_000002 on host",
                "container_"),
            "container_123_0001_01_000002");
  EXPECT_EQ(find_token_with_prefix("no ids here", "container_"), "");
  // Prefix embedded mid-token must not match.
  EXPECT_EQ(find_token_with_prefix("xcontainer_1_2_3_4 container_9_8_7_6",
                                   "container_"),
            "container_9_8_7_6");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count, 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForZeroItems) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

// --- FlatHashMap -------------------------------------------------------

TEST(FlatHashMap, InsertFindAndGrow) {
  FlatHashMap<int, int> map;
  EXPECT_TRUE(map.empty());
  for (int i = 0; i < 1000; ++i) map[i] = i * 3;
  EXPECT_EQ(map.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    const auto it = map.find(i);
    ASSERT_NE(it, map.end());
    EXPECT_EQ(it->second, i * 3);
  }
  EXPECT_EQ(map.find(1000), map.end());
  EXPECT_FALSE(map.contains(-1));
}

TEST(FlatHashMap, OperatorBracketDefaultInsertsOnce) {
  FlatHashMap<int, int> map;
  EXPECT_EQ(map[7], 0);
  map[7] = 42;
  EXPECT_EQ(map[7], 42);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, IterationVisitsEveryEntryOnce) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 123; ++i) map[i] = i;
  std::set<int> seen;
  for (const auto& [k, v] : map) {
    EXPECT_EQ(k, v);
    EXPECT_TRUE(seen.insert(k).second);
  }
  EXPECT_EQ(seen.size(), 123u);
}

TEST(FlatHashMap, HeterogeneousStringLookup) {
  FlatHashMap<std::string, int, StringHash> map;
  map[std::string("alpha")] = 1;
  map[std::string("beta")] = 2;
  // find by string_view: no temporary std::string allocated.
  EXPECT_NE(map.find(std::string_view("alpha")), map.end());
  EXPECT_TRUE(map.contains(std::string_view("beta")));
  EXPECT_FALSE(map.contains(std::string_view("gamma")));
}

TEST(FlatHashMap, ClearResets) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 50; ++i) map[i] = i;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), map.end());
  map[1] = 9;
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, EraseRemovesOnlyTheKey) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 500; ++i) map[i] = i * 7;
  // Erase every third key; the rest must stay findable (backward-shift
  // deletion must not break probe chains through the holes).
  for (int i = 0; i < 500; i += 3) EXPECT_EQ(map.erase(i), 1u);
  EXPECT_EQ(map.erase(0), 0u);     // already gone
  EXPECT_EQ(map.erase(9999), 0u);  // never present
  for (int i = 0; i < 500; ++i) {
    if (i % 3 == 0) {
      EXPECT_FALSE(map.contains(i)) << i;
    } else {
      const auto it = map.find(i);
      ASSERT_NE(it, map.end()) << i;
      EXPECT_EQ(it->second, i * 7);
    }
  }
  EXPECT_EQ(map.size(), 500u - 167u);
}

TEST(FlatHashMap, EraseThenReinsertAndIterate) {
  FlatHashMap<std::string, int, StringHash> map;
  map[std::string("alpha")] = 1;
  map[std::string("beta")] = 2;
  map[std::string("gamma")] = 3;
  EXPECT_EQ(map.erase(std::string_view("beta")), 1u);
  EXPECT_EQ(map.size(), 2u);
  map[std::string("beta")] = 20;
  std::set<std::string> seen;
  int sum = 0;
  for (const auto& [key, value] : map) {
    EXPECT_TRUE(seen.insert(key).second);
    sum += value;
  }
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(sum, 24);
}

TEST(FlatHashMap, EraseWholeTableLeavesItEmpty) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 100; ++i) map[i] = i;
  for (int i = 99; i >= 0; --i) EXPECT_EQ(map.erase(i), 1u);
  EXPECT_TRUE(map.empty());
  for (const auto& entry : map) {
    FAIL() << "iteration over empty map yielded " << entry.first;
  }
  map[5] = 55;  // still usable after full drain
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.find(5)->second, 55);
}

// --- FlatOrderedMap ----------------------------------------------------

TEST(FlatOrderedMap, IterationIsSorted) {
  FlatOrderedMap<int, int> map;
  for (const int k : {9, 3, 7, 1, 5}) map[k] = k * 10;
  std::vector<int> keys;
  for (const auto& [k, v] : map) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 10);
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(FlatOrderedMap, FindAtContains) {
  FlatOrderedMap<int, std::string> map;
  map[2] = "two";
  map[4] = "four";
  EXPECT_TRUE(map.contains(2));
  EXPECT_FALSE(map.contains(3));
  EXPECT_EQ(map.at(4), "four");
  EXPECT_THROW(map.at(5), std::out_of_range);
  EXPECT_EQ(map.find(3), map.end());
}

}  // namespace
}  // namespace sdc
