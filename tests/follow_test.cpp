// Tests for the follow-mode streaming service: live-directory tailing
// (appends split mid-line, streams appearing late, rotation handoff),
// bounded-memory eviction, and the parity contract — at quiescence the
// follow snapshot's analysis_json is byte-identical to batch analysis
// of the same directory.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/extractor.hpp"
#include "sdchecker/follow.hpp"
#include "workloads/tpch.hpp"

namespace sdc::checker {
namespace {

namespace fs = std::filesystem;

harness::ScenarioResult small_run(int jobs = 4, std::uint64_t seed = 701,
                                  int executors = 2) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 7 * i);
    plan.app = workloads::make_tpch_query(1 + i % workloads::kTpchQueryCount,
                                          1024, executors);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return harness::run_scenario(scenario);
}

/// Fresh (pre-cleaned) scratch directory for one test.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// One stream's full on-disk byte content (every line '\n'-terminated).
std::string join_lines(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

void append_bytes(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(out.is_open());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The byte range of `text` belonging to round `r` of `rounds` equal
/// slices — deliberately *not* aligned to line boundaries, so polls see
/// lines split mid-write.
std::string_view slice_of(const std::string& text, std::size_t r,
                          std::size_t rounds) {
  const std::size_t begin = text.size() * r / rounds;
  const std::size_t end = text.size() * (r + 1) / rounds;
  return std::string_view(text).substr(begin, end - begin);
}

AnalysisResult batch_analyze(const fs::path& dir) {
  return SdChecker().analyze_directory(dir);
}

// --- live append + late stream + quiescence parity ---------------------

TEST(Follow, LiveAppendsMatchBatchByteIdentically) {
  const auto run = small_run();
  const fs::path dir = scratch_dir("sdc_follow_live");
  const auto names = run.logs.stream_names();
  ASSERT_GE(names.size(), 2u);
  std::vector<std::string> texts;
  for (const auto& name : names) texts.push_back(join_lines(run.logs.lines(name)));

  FollowOptions options;
  options.retire = false;  // parity under eviction is its own test
  FollowService service(dir, options);
  EXPECT_EQ(service.poll_once().bytes_read, 0u);  // empty directory
  EXPECT_TRUE(service.quiescent());

  // Stream 0 appears only from round 3 — a new file mid-flight; every
  // stream's bytes arrive in 6 slices cut mid-line.
  constexpr std::size_t kRounds = 6;
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i == 0 && r < 3) continue;
      const std::size_t from = i == 0 ? (r - 3) * 2 : r;
      const std::size_t upto = i == 0 ? from + 2 : r + 1;
      for (std::size_t s = from; s < upto; ++s) {
        append_bytes(dir / names[i], slice_of(texts[i], s, kRounds));
      }
    }
    const PollStats stats = service.poll_once();
    EXPECT_GT(stats.bytes_read, 0u);
    EXPECT_FALSE(service.quiescent());
  }
  // Writers stopped: the next poll drains nothing.
  EXPECT_EQ(service.poll_once().bytes_read, 0u);
  EXPECT_TRUE(service.quiescent());
  service.finish();

  const AnalysisResult batch = batch_analyze(dir);
  const AnalysisResult live = service.snapshot();
  EXPECT_EQ(analysis_json(live), analysis_json(batch));
  EXPECT_EQ(live.lines_total, batch.lines_total);
  EXPECT_EQ(live.events_total, batch.events_total);
  EXPECT_EQ(service.streams_seen(), names.size());
  EXPECT_EQ(service.analyzer().events_late_dropped(), 0u);
}

// --- rotation handoff --------------------------------------------------

TEST(Follow, RotationHandoffMatchesBatchReassembly) {
  const auto run = small_run(3, 702);
  const fs::path dir = scratch_dir("sdc_follow_rotate");
  const auto names = run.logs.stream_names();
  ASSERT_GE(names.size(), 1u);

  FollowService service(dir, FollowOptions{.retire = false});

  // All streams but the first are written whole; the first is rotated
  // mid-life: half its bytes (cut mid-line), rename to `.1`, fresh base
  // file carries the rest.
  for (std::size_t i = 1; i < names.size(); ++i) {
    append_bytes(dir / names[i], join_lines(run.logs.lines(names[i])));
  }
  const std::string rotated = names[0];
  const std::string text = join_lines(run.logs.lines(rotated));
  append_bytes(dir / rotated, slice_of(text, 0, 2));
  service.poll_once();

  fs::rename(dir / rotated, dir / (rotated + ".1"));
  append_bytes(dir / rotated, slice_of(text, 1, 2));
  service.poll_once();
  EXPECT_EQ(service.rotations(), 1u);

  while (!service.quiescent()) service.poll_once();
  service.finish();

  const AnalysisResult batch = batch_analyze(dir);
  const AnalysisResult live = service.snapshot();
  EXPECT_EQ(analysis_json(live), analysis_json(batch));

  // Both sides report the reassembly the same way.
  bool found = false;
  for (const auto& diagnostic : live.diagnostics) {
    if (diagnostic.kind == logging::DiagnosticKind::kRotationGap &&
        diagnostic.stream == rotated) {
      found = true;
      EXPECT_EQ(diagnostic.detail, "reassembled 2 rotated segments: " +
                                       rotated + ".1, " + rotated);
    }
  }
  EXPECT_TRUE(found);
}

// --- bounded-memory eviction over a large corpus -----------------------

TEST(Follow, EvictionKeepsMemoryBoundedAndSnapshotExact) {
  const auto run = small_run(100, 703, 1);
  const fs::path dir = scratch_dir("sdc_follow_evict");
  const auto names = run.logs.stream_names();

  FollowOptions options;
  options.retire_quiet_polls = 4;
  FollowService service(dir, options);

  // Time-aligned ingestion, the way a real cluster is tailed: every
  // line carries the simulation clock in its timestamp, and each round
  // releases the next window of that clock across ALL streams at once.
  // Daemon logs (rm/nm) grow a few lines per round; an application's
  // own logs land whole the moment the app starts.  An app's events can
  // therefore never trail its FINISHED transition, and terminal apps
  // retire while later apps are still arriving.
  constexpr std::size_t kRounds = 25;
  std::vector<std::string> texts;
  std::vector<bool> per_app_done(names.size(), false);
  std::vector<int> app_index(names.size(), -1);
  std::size_t app_streams = 0;
  for (const auto& name : names) {
    texts.push_back(join_lines(run.logs.lines(name)));
  }
  // A stream is per-app when its file name carries the application (or
  // container) id — driver-application_*.log / executor-container_*.log.
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (const auto app = find_application_id(names[i])) {
      app_index[i] = app->id;
      ++app_streams;
    } else if (const auto container = find_container_id(names[i])) {
      app_index[i] = container->app.id;
      ++app_streams;
    }
  }
  // Per-line clock, carried forward across untimestamped continuations.
  std::vector<std::vector<std::int64_t>> line_ts(names.size());
  std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
  std::int64_t t1 = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::int64_t carry = -1;
    for (const auto& line : run.logs.lines(names[i])) {
      if (const auto ts = logging::parse_epoch_ms(line)) carry = *ts;
      line_ts[i].push_back(carry);
    }
    for (std::size_t j = line_ts[i].size(); j-- > 1;) {
      if (line_ts[i][j - 1] < 0) line_ts[i][j - 1] = line_ts[i][j];
    }
    for (const std::int64_t ts : line_ts[i]) {
      ASSERT_GE(ts, 0) << names[i];
      t0 = std::min(t0, ts);
      t1 = std::max(t1, ts);
    }
  }
  const std::size_t total_apps = 100;
  std::size_t max_resident = 0;
  std::vector<std::size_t> next_line(names.size(), 0);
  for (std::size_t r = 0; r < kRounds; ++r) {
    const std::int64_t cutoff =
        t0 + (t1 - t0) * static_cast<std::int64_t>(r + 1) /
                 static_cast<std::int64_t>(kRounds);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (app_index[i] >= 0) {
        if (!per_app_done[i] && line_ts[i].front() <= cutoff) {
          append_bytes(dir / names[i], texts[i]);
          per_app_done[i] = true;
        }
        continue;
      }
      const auto& lines = run.logs.lines(names[i]);
      std::string chunk;
      while (next_line[i] < lines.size() &&
             line_ts[i][next_line[i]] <= cutoff) {
        chunk += lines[next_line[i]];
        chunk += '\n';
        ++next_line[i];
      }
      if (!chunk.empty()) append_bytes(dir / names[i], chunk);
    }
    service.poll_once();
    max_resident = std::max(max_resident, service.analyzer().apps_resident());
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (app_index[i] >= 0 && !per_app_done[i]) {
      append_bytes(dir / names[i], texts[i]);
    }
  }
  // Drain, then keep ticking until the retirement grace elapses for the
  // last terminal apps.
  for (std::size_t i = 0; i < options.retire_quiet_polls + 3; ++i) {
    service.poll_once();
  }
  EXPECT_TRUE(service.quiescent());
  service.finish();

  ASSERT_GT(app_streams, 0u);
  const AnalysisResult live = service.snapshot();
  ASSERT_GE(live.delays.size(), total_apps);
  // No event arrived for an already-retired application (the grace held),
  // so the snapshot must be exact.
  EXPECT_EQ(service.analyzer().events_late_dropped(), 0u);
  EXPECT_EQ(analysis_json(live), analysis_json(batch_analyze(dir)));
  // Memory stayed bounded: retirement freed timelines during ingestion,
  // and by the end nearly every app is a retired row, not a timeline.
  EXPECT_GE(service.analyzer().apps_retired(), total_apps / 2);
  EXPECT_LT(max_resident, total_apps);
  EXPECT_LT(service.analyzer().apps_resident(),
            total_apps - service.analyzer().apps_retired() + 10);
}

// --- mid-rotation races ------------------------------------------------

TEST(Follow, RenameWithoutSuccessorIsFollowedNotDiagnosed) {
  const fs::path dir = scratch_dir("sdc_follow_rename");
  const std::string line =
      "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
      "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0001 "
      "State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED";
  FollowService service(dir, FollowOptions{.retire = false});
  append_bytes(dir / "rm.log", line + "\n");
  service.poll_once();
  // Renamed away with no fresh base yet — the inode is simply followed.
  fs::rename(dir / "rm.log", dir / "rm.log.1");
  append_bytes(dir / "rm.log.1", line + "\n");
  service.poll_once();
  service.finish();
  const AnalysisResult live = service.snapshot();
  EXPECT_EQ(live.lines_total, 2u);
  EXPECT_EQ(live.diag_counts.of(logging::DiagnosticKind::kUnreadableFile), 0u);
}

TEST(Follow, TruncationRestartsSegmentWithoutUnreadableSpam) {
  const fs::path dir = scratch_dir("sdc_follow_trunc");
  FollowService service(dir, FollowOptions{.retire = false});
  append_bytes(dir / "nm.log", "first generation line one\n");
  service.poll_once();
  // copytruncate-style rotation: same inode, size snaps to zero.
  { std::ofstream out(dir / "nm.log", std::ios::binary | std::ios::trunc); }
  append_bytes(dir / "nm.log", "second generation line one\n");
  service.poll_once();
  service.finish();
  const AnalysisResult live = service.snapshot();
  // Both generations were ingested, once each, with no unreadable noise.
  EXPECT_EQ(live.lines_total, 2u);
  EXPECT_EQ(live.diag_counts.of(logging::DiagnosticKind::kUnreadableFile), 0u);
}

TEST(Follow, UnreadableFileDiagnosedOnceAndMatchesBatch) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "permission checks are bypassed when running as root";
  }
  const auto run = small_run(2, 704);
  const fs::path dir = scratch_dir("sdc_follow_unreadable");
  const auto names = run.logs.stream_names();
  for (const auto& name : names) {
    append_bytes(dir / name, join_lines(run.logs.lines(name)));
  }
  append_bytes(dir / "secret.log", "not for you\n");
  fs::permissions(dir / "secret.log", fs::perms::none);

  FollowService service(dir, FollowOptions{.retire = false});
  for (int i = 0; i < 3; ++i) service.poll_once();
  service.finish();

  const AnalysisResult live = service.snapshot();
  std::size_t unreadable = 0;
  for (const auto& diagnostic : live.diagnostics) {
    if (diagnostic.kind == logging::DiagnosticKind::kUnreadableFile) {
      ++unreadable;
      EXPECT_EQ(diagnostic.stream, "secret.log");
      EXPECT_EQ(diagnostic.count, 1u);
    }
  }
  EXPECT_EQ(unreadable, 1u);  // three polls, one record
  EXPECT_EQ(analysis_json(live), analysis_json(batch_analyze(dir)));
  fs::permissions(dir / "secret.log", fs::perms::owner_all);
}

// --- watch stream ------------------------------------------------------

TEST(Follow, WatchRecordIsOneValidSchemaCheckedLine) {
  const auto run = small_run(2, 705);
  const fs::path dir = scratch_dir("sdc_follow_watch");
  for (const auto& name : run.logs.stream_names()) {
    append_bytes(dir / name, join_lines(run.logs.lines(name)));
  }
  FollowService service(dir, FollowOptions{});
  service.poll_once();
  const std::string record = service.watch_record();
  EXPECT_EQ(record.find('\n'), std::string::npos);  // ndjson-safe
  const WatchCheckResult ok = check_watch_json(record);
  EXPECT_TRUE(ok.ok) << (ok.errors.empty() ? "" : ok.errors.front());

  EXPECT_FALSE(check_watch_json("{}").ok);
  EXPECT_FALSE(check_watch_json("not json").ok);
  EXPECT_FALSE(check_watch_json("[1,2,3]").ok);
}

}  // namespace
}  // namespace sdc::checker
