// AM attempt retry tests: an AppMaster launch failure starts a second
// application attempt (new attempt number in every container id), up to
// the configured maximum.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sdchecker/compare.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

harness::ScenarioResult run_with_am_failures(double prob,
                                             std::uint64_t seed = 1101,
                                             int jobs = 10) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  scenario.extra_horizon = seconds(600);
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 8 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 2);
    plan.app.am_failure_prob = prob;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return harness::run_scenario(scenario);
}

TEST(AmRetry, SecondAttemptCarriesAttemptNumberTwo) {
  const auto result = run_with_am_failures(0.5);
  // Some apps needed a second attempt: their logs show _02_ containers
  // and an RMAppAttemptImpl FAILED line.
  std::size_t attempt_failed_lines = 0;
  std::size_t attempt2_containers = 0;
  for (const auto& name : result.logs.stream_names()) {
    for (const auto& line : result.logs.lines(name)) {
      if (line.find("RMAppAttemptImpl") != std::string::npos &&
          line.find("FAILED") != std::string::npos) {
        ++attempt_failed_lines;
      }
      if (line.find("_02_000001 Container Transitioned from NEW to ALLOCATED") !=
          std::string::npos) {
        ++attempt2_containers;
      }
    }
  }
  EXPECT_GT(attempt_failed_lines, 0u);
  EXPECT_GT(attempt2_containers, 0u);
}

TEST(AmRetry, RetriedAppsStillCompleteAndDecompose) {
  const auto result = run_with_am_failures(0.5, 1102);
  // p=0.5 with max 2 attempts: expect most of the 10 jobs to finish.
  EXPECT_GE(result.jobs.size(), 6u);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  for (const auto& job : result.jobs) {
    const auto& delays = analysis.delays.at(job.app);
    ASSERT_TRUE(delays.total && delays.am && delays.driver) << job.app.str();
    EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
  }
}

TEST(AmRetry, RetriedAppsPayLargerAmDelay) {
  const auto result = run_with_am_failures(0.6, 1103, 20);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  SampleSet retried;
  SampleSet direct;
  for (const auto& [app, timeline] : analysis.timelines) {
    const auto& delays = analysis.delays.at(app);
    if (!delays.am) continue;  // app failed outright
    bool has_attempt2 = false;
    for (const auto& [cid, _] : timeline.containers) {
      if (cid.attempt == 2) has_attempt2 = true;
    }
    (has_attempt2 ? retried : direct)
        .add(static_cast<double>(*delays.am) / 1000.0);
  }
  ASSERT_GT(retried.size(), 0u);
  ASSERT_GT(direct.size(), 0u);
  // A failed first attempt costs a localization+partial-launch round plus
  // the retry scheduling before the driver can register.
  EXPECT_GT(retried.mean(), direct.mean() + 0.6);
}

TEST(AmRetry, ExhaustedAttemptsFailTheApplication) {
  harness::ScenarioConfig scenario;
  scenario.seed = 1104;
  scenario.extra_horizon = seconds(120);  // cap quickly: the job can't run
  harness::SparkSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app = workloads::make_tpch_query(1, 1024, 2);
  plan.app.am_failure_prob = 1.0;  // every AM launch fails
  scenario.spark_jobs.push_back(std::move(plan));
  const auto result = harness::run_scenario(scenario);
  EXPECT_TRUE(result.hit_time_cap);  // the job never completed
  EXPECT_TRUE(result.jobs.empty());
  // The RM gave up after max attempts: FINAL_SAVING/FINISHED without an
  // ATTEMPT_REGISTERED, and exactly two failed attempts.
  std::size_t failed_attempts = 0;
  bool finished = false;
  bool registered = false;
  for (const auto& line : result.logs.lines("rm.log")) {
    if (line.find("RMAppAttemptImpl") != std::string::npos &&
        line.find("FAILED") != std::string::npos) {
      ++failed_attempts;
    }
    if (line.find("to FINISHED") != std::string::npos) finished = true;
    if (line.find("ATTEMPT_REGISTERED") != std::string::npos) registered = true;
  }
  EXPECT_EQ(failed_attempts, 2u);
  EXPECT_TRUE(finished);
  EXPECT_FALSE(registered);
}

TEST(AmRetry, FailedAmContainerHasNoLaunchingDelay) {
  const auto result = run_with_am_failures(0.6, 1105, 8);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  for (const auto& [app, delays] : analysis.delays) {
    for (const auto& container : delays.containers) {
      if (!container.is_am) continue;
      const auto& timeline = analysis.timelines.at(app);
      const auto it = timeline.containers.find(container.id);
      ASSERT_NE(it, timeline.containers.end());
      if (it->second.has(checker::EventKind::kNmFailed)) {
        // The attempt-1 AM died mid-launch: no first log to measure to.
        EXPECT_FALSE(container.launching.has_value());
      }
    }
  }
}

}  // namespace
}  // namespace sdc
