// Tests for the workload builders and the MapReduce application model.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "workloads/generators.hpp"
#include "workloads/mr_app.hpp"
#include "workloads/tpch.hpp"

namespace sdc::workloads {
namespace {

// --- TPC-H builders ---------------------------------------------------------

TEST(Tpch, QueryComplexityBounds) {
  for (int q = 1; q <= kTpchQueryCount; ++q) {
    const double c = tpch_query_complexity(q);
    EXPECT_GT(c, 0.3) << "q" << q;
    EXPECT_LT(c, 2.0) << "q" << q;
  }
  EXPECT_THROW((void)tpch_query_complexity(0), std::out_of_range);
  EXPECT_THROW((void)tpch_query_complexity(23), std::out_of_range);
}

TEST(Tpch, ConfigShape) {
  const auto config = make_tpch_query(7, 2048, 4);
  EXPECT_EQ(config.name, "tpch-q7");
  EXPECT_EQ(config.kind, spark::AppKind::kSparkSql);
  EXPECT_EQ(config.files_opened, kTpchTableCount);
  EXPECT_EQ(config.num_executors, 4);
  EXPECT_DOUBLE_EQ(config.input_mb, 2048);
  EXPECT_GT(config.execution_median, 0);
  EXPECT_GT(config.scan_io_units, 0);
}

TEST(Tpch, ExecutionScalesWithInput) {
  const auto small = make_tpch_query(1, 20, 4);
  const auto medium = make_tpch_query(1, 2048, 4);
  const auto large = make_tpch_query(1, 200 * 1024, 4);
  EXPECT_LT(small.execution_median, medium.execution_median);
  EXPECT_LT(medium.execution_median, large.execution_median);
  // Fig. 5 self-interference: 200 GB input exerts serious I/O pressure.
  EXPECT_GT(large.scan_io_units, 50.0);
  EXPECT_LT(small.scan_io_units, 0.01);
}

TEST(Tpch, MoreExecutorsShortenScan) {
  const auto narrow = make_tpch_query(1, 8192, 2);
  const auto wide = make_tpch_query(1, 8192, 16);
  EXPECT_GT(narrow.scan_duration, wide.scan_duration);
}

TEST(Tpch, WordcountShape) {
  const auto config = make_spark_wordcount(1024, 4);
  EXPECT_EQ(config.files_opened, 1);
  EXPECT_EQ(config.kind, spark::AppKind::kWordCount);
}

// --- interference generators --------------------------------------------------

TEST(Generators, DfsioShape) {
  const auto config = make_dfsio(100, seconds(300));
  EXPECT_EQ(config.num_maps, 100);
  EXPECT_EQ(config.num_reduces, 0);
  EXPECT_DOUBLE_EQ(config.io_units_per_map, 1.0);
  EXPECT_EQ(config.map_duration_median, seconds(300));
}

TEST(Generators, KmeansShape) {
  const auto config = make_kmeans(seconds(120));
  EXPECT_EQ(config.kind, spark::AppKind::kKmeans);
  EXPECT_DOUBLE_EQ(config.cpu_units_while_running, 1.0);
  EXPECT_EQ(config.num_executors, 4);
  EXPECT_DOUBLE_EQ(config.scan_io_units, 0.0);
}

TEST(Generators, WordcountLoadSizing) {
  const auto pct40 = make_mr_wordcount_for_load(0.4, 800);
  EXPECT_EQ(pct40.num_maps, 320);
  const auto pct100 = make_mr_wordcount_for_load(1.0, 800);
  EXPECT_EQ(pct100.num_maps, 800);
  const auto clamped = make_mr_wordcount_for_load(1.7, 800);
  EXPECT_EQ(clamped.num_maps, 800);
  const auto floor = make_mr_wordcount_for_load(0.0, 800);
  EXPECT_EQ(floor.num_maps, 1);
}

// --- MrApp lifecycle -------------------------------------------------------------

TEST(MrApp, RunsToCompletionAndLogsTasks) {
  harness::ScenarioConfig scenario;
  scenario.seed = 21;
  harness::MrSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app.name = "mr-test";
  plan.app.num_maps = 6;
  plan.app.num_reduces = 2;
  plan.app.map_duration_median = seconds(3);
  plan.app.reduce_duration_median = seconds(2);
  scenario.mr_jobs.push_back(std::move(plan));
  const auto result = harness::run_scenario(scenario);

  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].kind, spark::AppKind::kMapReduce);
  EXPECT_EQ(result.jobs[0].executors_launched, 8);
  EXPECT_FALSE(result.hit_time_cap);
  // 1 AM + 8 tasks allocated.
  EXPECT_EQ(result.containers_allocated, 9);
  // Each task logs a YarnChild stream.
  std::size_t task_streams = 0;
  for (const auto& name : result.logs.stream_names()) {
    if (name.rfind("mrtask-", 0) == 0) ++task_streams;
  }
  EXPECT_EQ(task_streams, 8u);
}

TEST(MrApp, DfsioRaisesAndReleasesIoUnits) {
  // The dfsIO app must exert I/O pressure only while its maps run; after
  // the scenario everything returns to idle.  We validate indirectly via
  // a second app's localization time being longer when overlapped.
  harness::ScenarioConfig interfered;
  interfered.seed = 5;
  {
    harness::MrSubmissionPlan dfsio;
    dfsio.at = 0;
    dfsio.app = make_dfsio(60, seconds(120));
    interfered.mr_jobs.push_back(std::move(dfsio));
    harness::SparkSubmissionPlan victim;
    victim.at = seconds(30);
    victim.app = workloads::make_tpch_query(1, 1024, 4);
    interfered.spark_jobs.push_back(std::move(victim));
  }
  harness::ScenarioConfig baseline;
  baseline.seed = 5;
  {
    harness::SparkSubmissionPlan victim;
    victim.at = seconds(30);
    victim.app = workloads::make_tpch_query(1, 1024, 4);
    baseline.spark_jobs.push_back(std::move(victim));
  }
  const auto with_io = harness::run_scenario(interfered);
  const auto without_io = harness::run_scenario(baseline);
  ASSERT_EQ(with_io.jobs.size(), 2u);
  ASSERT_EQ(without_io.jobs.size(), 1u);
  // Find the victim job in each run (the spark-sql one).
  const auto find_sql = [](const harness::ScenarioResult& r) {
    for (const auto& job : r.jobs) {
      if (job.kind == spark::AppKind::kSparkSql) return job;
    }
    throw std::runtime_error("victim not found");
  };
  const auto victim_io = find_sql(with_io);
  const auto victim_idle = find_sql(without_io);
  const auto delay = [](const spark::JobRecord& j) {
    return j.first_task_at - j.submitted_at;
  };
  EXPECT_GT(delay(victim_io), delay(victim_idle));
}

TEST(MrApp, ZeroTaskJobStillCompletes) {
  harness::ScenarioConfig scenario;
  scenario.seed = 9;
  harness::MrSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app.num_maps = 0;
  plan.app.num_reduces = 0;
  scenario.mr_jobs.push_back(std::move(plan));
  const auto result = harness::run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].executors_launched, 0);
  EXPECT_FALSE(result.hit_time_cap);
}

}  // namespace
}  // namespace sdc::workloads
