// Tests for the embedded observability HTTP server and the follow-mode
// serving glue: request parsing and error classes (404/405/400/431,
// early-closed sockets), HEAD semantics, and the concurrent-scrape
// contract — N client threads hammering /metrics, /analysis, /healthz
// and /varz while a FollowService ingests a rotating corpus, every
// /metrics body validating as Prometheus exposition and the final
// /analysis byte-identical to batch analysis.  Runs under TSan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/scenario.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_export.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/follow.hpp"
#include "sdchecker/sdchecker.hpp"
#include "sdchecker/serve.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

namespace fs = std::filesystem;

// --- raw HTTP client helpers -------------------------------------------

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

struct RawResponse {
  int status = 0;
  std::string head;
  std::string body;
};

/// Sends `request` verbatim, reads to EOF (the server closes per
/// request) and splits status/head/body.
RawResponse roundtrip(std::uint16_t port, const std::string& request) {
  const int fd = connect_to(port);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string raw;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  RawResponse response;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return response;
  response.head = raw.substr(0, head_end);
  response.body = raw.substr(head_end + 4);
  if (response.head.size() > 12) {
    response.status = std::atoi(response.head.c_str() + 9);
  }
  return response;
}

RawResponse get(std::uint16_t port, const std::string& path) {
  return roundtrip(port,
                   "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

// --- basic server behavior ---------------------------------------------

TEST(HttpServer, ServesRegisteredRoutesAndStripsQuery) {
  obs::HttpServer server;
  server.handle("/ping", [] {
    obs::HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);

  EXPECT_EQ(get(server.port(), "/ping").body, "pong");
  EXPECT_EQ(get(server.port(), "/ping?x=1").status, 200);
  server.stop();
  server.stop();  // idempotent
}

TEST(HttpServer, HeadOmitsBodyButKeepsContentLength) {
  obs::HttpServer server;
  server.handle("/ping", [] {
    obs::HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.start());
  const RawResponse response =
      roundtrip(server.port(), "HEAD /ping HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.body.empty());
  EXPECT_NE(response.head.find("Content-Length: 4"), std::string::npos);
}

TEST(HttpServer, ErrorClasses) {
  obs::HttpServerOptions options;
  options.max_request_bytes = 256;
  obs::HttpServer server(options);
  server.handle("/ok", [] { return obs::HttpResponse{}; });
  server.handle("/boom", []() -> obs::HttpResponse {
    throw std::runtime_error("kaboom");
  });
  ASSERT_TRUE(server.start());

  EXPECT_EQ(get(server.port(), "/nope").status, 404);
  EXPECT_EQ(roundtrip(server.port(), "POST /ok HTTP/1.1\r\n\r\n").status,
            405);
  EXPECT_EQ(roundtrip(server.port(), "garbage\r\n\r\n").status, 400);
  EXPECT_EQ(roundtrip(server.port(),
                      "GET /ok HTTP/1.1\r\nX: " + std::string(512, 'a') +
                          "\r\n\r\n")
                .status,
            431);
  EXPECT_EQ(get(server.port(), "/boom").status, 500);

  // Early-closed socket: connect, say nothing, hang up.  Must not wedge
  // or crash a worker; the next request still answers.
  ::close(connect_to(server.port()));
  EXPECT_EQ(get(server.port(), "/ok").status, 200);

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();
  EXPECT_GE(snapshot.counter("obs.http.errors.not-found"), 1u);
  EXPECT_GE(snapshot.counter("obs.http.errors.bad-method"), 1u);
  EXPECT_GE(snapshot.counter("obs.http.errors.bad-request"), 1u);
  EXPECT_GE(snapshot.counter("obs.http.errors.overlong"), 1u);
  EXPECT_GE(snapshot.counter("obs.http.errors.internal"), 1u);
  EXPECT_GE(snapshot.counter("obs.http.requests"), 5u);
}

// --- follow serving glue -----------------------------------------------

TEST(FollowServe, HealthzFlipsTo503OnStalledPolls) {
  checker::FollowPublisher publisher;
  checker::FollowServeOptions options;
  options.stall_threshold_ms = 1;  // any real pause trips it
  const auto server = checker::make_follow_server(publisher, options);
  ASSERT_TRUE(server->start());

  publisher.touch(3, true);
  EXPECT_EQ(get(server->port(), "/healthz").status, 200);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const RawResponse stalled = get(server->port(), "/healthz");
  EXPECT_EQ(stalled.status, 503);
  EXPECT_NE(stalled.body.find("\"status\":\"stalled\""), std::string::npos);
  EXPECT_NE(stalled.body.find("\"polls\":3"), std::string::npos);
  EXPECT_GE(obs::MetricsRegistry::global().snapshot().counter(
                "follow.poll.stall"),
            1u);

  // Recovery: the next poll stamp flips it back.
  publisher.touch(4, true);
  EXPECT_EQ(get(server->port(), "/healthz").status, 200);
}

TEST(FollowServe, MetricsEndpointValidatesAndCoversCatalog) {
  checker::FollowPublisher publisher;
  const auto server = checker::make_follow_server(publisher);
  ASSERT_TRUE(server->start());
  const RawResponse response = get(server->port(), "/metrics");
  EXPECT_EQ(response.status, 200);
  const obs::PromCheckResult check = obs::check_prom_text(response.body);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  // The delay family is pre-registered: full histogram series appear
  // before any sample lands.
  EXPECT_NE(response.body.find("sdc_delay_total_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(response.body.find("obs_http_requests"), std::string::npos);
}

// --- concurrent scrape under live ingestion ----------------------------

harness::ScenarioResult small_run() {
  harness::ScenarioConfig scenario;
  scenario.seed = 901;
  for (int i = 0; i < 3; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 7 * i);
    plan.app = workloads::make_tpch_query(1 + i, 1024, 2);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return harness::run_scenario(scenario);
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

void append_bytes(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(out.is_open());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string_view slice_of(const std::string& text, std::size_t r,
                          std::size_t rounds) {
  const std::size_t begin = text.size() * r / rounds;
  const std::size_t end = text.size() * (r + 1) / rounds;
  return std::string_view(text).substr(begin, end - begin);
}

TEST(FollowServe, ConcurrentScrapesNeverTearAndFinalAnalysisMatchesBatch) {
  const auto run = small_run();
  const fs::path dir = scratch_dir("sdc_serve_concurrent");
  const auto names = run.logs.stream_names();
  ASSERT_GE(names.size(), 2u);
  std::vector<std::string> texts;
  for (const auto& name : names) {
    texts.push_back(join_lines(run.logs.lines(name)));
  }

  checker::FollowService service(dir, checker::FollowOptions{.retire = false});
  checker::FollowPublisher publisher;
  const auto server = checker::make_follow_server(publisher);
  ASSERT_TRUE(server->start());
  const std::uint16_t port = server->port();

  // Clients hammer every endpoint until told to stop; each /metrics and
  // /analysis body must be internally consistent no matter where the
  // poll loop is.
  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      while (!done.load(std::memory_order_relaxed)) {
        const RawResponse metrics = get(port, "/metrics");
        EXPECT_EQ(metrics.status, 200);
        const obs::PromCheckResult check =
            obs::check_prom_text(metrics.body);
        EXPECT_TRUE(check.ok)
            << (check.errors.empty() ? "" : check.errors[0]);
        const RawResponse analysis = get(port, "/analysis");
        EXPECT_EQ(analysis.status, 200);
        EXPECT_FALSE(analysis.body.empty());
        const int healthz = get(port, "/healthz").status;
        EXPECT_TRUE(healthz == 200 || healthz == 503);
        EXPECT_EQ(get(port, "/varz").status, 200);
        if (c == 0) {
          EXPECT_EQ(get(port, "/bogus").status, 404);
        }
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The poll loop: slices cut mid-line, one stream rotated mid-flight.
  constexpr std::size_t kRounds = 5;
  const std::string rotated = names[0];
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      append_bytes(dir / names[i], slice_of(texts[i], r, kRounds));
    }
    if (r == 2) {
      fs::rename(dir / rotated, dir / (rotated + ".1"));
    }
    service.poll_once();
    checker::FollowPublication publication;
    publication.analysis_json = checker::analysis_json(service.snapshot());
    publication.polls = service.polls();
    publication.quiescent = service.quiescent();
    publisher.publish(std::move(publication));
  }
  while (!service.quiescent()) {
    service.poll_once();
  }
  service.finish();
  {
    checker::FollowPublication publication;
    publication.analysis_json = checker::analysis_json(service.snapshot());
    publication.polls = service.polls();
    publication.quiescent = true;
    publisher.publish(std::move(publication));
  }

  // Let the clients observe the final snapshot at least once more.
  const int floor = scrapes.load() + 2;
  while (scrapes.load() < floor) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true);
  for (std::thread& client : clients) client.join();

  // The served document is byte-identical to batch analysis of the same
  // (now quiescent) directory.
  const std::string served = get(port, "/analysis").body;
  const std::string batch =
      checker::analysis_json(checker::SdChecker().analyze_directory(dir));
  EXPECT_EQ(served, batch);
  EXPECT_EQ(server->address(),
            "127.0.0.1:" + std::to_string(server->port()));
}

}  // namespace
}  // namespace sdc
