// Observability layer: metrics registry, span tracer, trace validator,
// progress meter, and the span/trace contracts under the sharded miner.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "logging/diagnostics.hpp"
#include "logging/log_bundle.hpp"
#include "logging/timestamp.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace_check.hpp"
#include "obs/trace_writer.hpp"
#include "obs/tracer.hpp"
#include "sdchecker/miner.hpp"

namespace sdc::obs {
namespace {

// --- metrics registry --------------------------------------------------------

TEST(Metrics, CounterGetOrCreateIsPointerStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.counter");
  Counter& b = registry.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (edges inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 edges + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, HistogramFirstRegistrationFixesEdges) {
  MetricsRegistry registry;
  Histogram& a = registry.histogram("test.h", {1.0, 2.0});
  Histogram& b = registry.histogram("test.h", {99.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.upper_edges().size(), 2u);
}

TEST(Metrics, SnapshotAndJson) {
  MetricsRegistry registry;
  registry.counter("c.one").add(5);
  registry.gauge("g.one").set(-2);
  registry.histogram("h.one", {10.0}).observe(3.0);

  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_TRUE(snapshot.has_counter("c.one"));
  EXPECT_EQ(snapshot.counter("c.one"), 5u);
  EXPECT_EQ(snapshot.gauges.at("g.one"), -2);
  ASSERT_TRUE(snapshot.has_histogram("h.one"));
  EXPECT_EQ(snapshot.histograms.at("h.one").count, 1u);

  const std::string json = snapshot.to_json();
  EXPECT_NE(json.find("\"c.one\":5"), std::string::npos);
  EXPECT_NE(json.find("\"g.one\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"h.one\""), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
}

TEST(Metrics, ResetValuesKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  c.add(9);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(registry.snapshot().counter("c"), 1u);
}

TEST(Metrics, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("concurrent.counter");
  Histogram& h = registry.histogram("concurrent.hist", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(1.0);  // all overflow
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  EXPECT_EQ(buckets.back(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ConcurrentGetOrCreateYieldsOneInstrument) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        seen[t] = &registry.counter("race.counter");
        seen[t]->add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(registry.snapshot().counter("race.counter"), 8000u);
}

// --- tracer ------------------------------------------------------------------

TEST(Tracer, DisabledSpanIsInertAndRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    const auto span = tracer.span("should.not.record");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, EnabledSpanRecordsNameAndDuration) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    const auto span = tracer.span("unit.work");
    EXPECT_TRUE(span.active());
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.work");
  EXPECT_EQ(spans[0].track, Tracer::current_track());
}

TEST(Tracer, ClearDropsSpansAndRestartsEpoch) {
  Tracer tracer;
  tracer.set_enabled(true);
  { const auto span = tracer.span("a"); }
  ASSERT_EQ(tracer.snapshot().size(), 1u);
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  { const auto span = tracer.span("b"); }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "b");
}

TEST(Tracer, ThreadsGetDistinctTracks) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] { const auto span = tracer.span("per.thread"); });
  }
  for (std::thread& w : workers) w.join();
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads));
  std::set<std::uint32_t> tracks;
  for (const SpanRecord& s : spans) tracks.insert(s.track);
  EXPECT_EQ(tracks.size(), static_cast<std::size_t>(kThreads));
}

TEST(Tracer, NestedSpansAreContainedWithinParents) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    const auto outer = tracer.span("outer");
    {
      const auto inner = tracer.span("inner");
    }
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans record on destruction: inner first, outer second.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, outer.start_us + outer.dur_us);
}

// --- trace writer + validator ------------------------------------------------

TEST(TraceWriter, SpansRoundTripThroughValidator) {
  std::vector<SpanRecord> spans;
  spans.push_back({"mine.total", 0, 500, 0});
  spans.push_back({"mine.chunk", 10, 100, 1});
  spans.push_back({"mine.chunk", 120, 100, 1});
  const std::string json = spans_trace_json(spans);
  const TraceCheckResult result = check_trace_json(json);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_GT(result.events, 0u);
  EXPECT_EQ(result.processes, 1u);
}

TEST(TraceCheck, RejectsMalformedJson) {
  EXPECT_FALSE(check_trace_json("{\"traceEvents\":[").ok);
  EXPECT_FALSE(check_trace_json("not json at all").ok);
  EXPECT_FALSE(check_trace_json("[]").ok);  // top level must be an object
}

TEST(TraceCheck, RejectsNonMonotonicSliceTimestamps) {
  TraceEventWriter writer;
  writer.process_name(1, "p");
  writer.complete(1, 1, "late", 100, 10);
  writer.complete(1, 1, "early", 50, 10);  // goes backwards on the track
  const TraceCheckResult result = check_trace_json(writer.finish());
  EXPECT_FALSE(result.ok);
}

TEST(TraceCheck, AllowsEqualTimestampsAndIndependentTracks) {
  TraceEventWriter writer;
  writer.process_name(1, "p");
  writer.complete(1, 1, "a", 100, 10);
  writer.complete(1, 1, "b", 100, 5);   // equal ts is fine
  writer.complete(1, 2, "c", 10, 10);   // other track restarts freely
  EXPECT_TRUE(check_trace_json(writer.finish()).ok);
}

TEST(TraceCheck, RequiredSlicesEnforcedPerMatchingProcess) {
  TraceEventWriter writer;
  writer.process_name(1, "application_1499100000000_0001");
  writer.complete(1, 1, "total", 0, 10);
  writer.process_name(2, "other process");  // prefix does not match
  writer.complete(2, 1, "unrelated", 0, 10);
  const std::string json = writer.finish();

  TraceCheckOptions options;
  options.required_process_prefix = "application_";
  options.required_slices = {"total"};
  EXPECT_TRUE(check_trace_json(json, options).ok);

  options.required_slices = {"total", "am"};
  const TraceCheckResult missing = check_trace_json(json, options);
  EXPECT_FALSE(missing.ok);
  ASSERT_FALSE(missing.errors.empty());
  EXPECT_NE(missing.errors[0].find("am"), std::string::npos);
}

TEST(TraceCheck, NegativeDurationRejected) {
  // Hand-built event with dur < 0 (the writer API cannot produce one).
  const std::string json =
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":5,\"dur\":-1}]}";
  EXPECT_FALSE(check_trace_json(json).ok);
}

// --- spans under the sharded miner -------------------------------------------

/// Writes a corpus big enough that, chunked at the default grain, the
/// mining pool's workers all get meaningful work (each chunk is ~8k
/// lines, so one thread cannot drain the queue before the others start).
std::filesystem::path write_span_corpus() {
  const auto dir =
      std::filesystem::temp_directory_path() / "sdc_obs_span_corpus";
  std::filesystem::remove_all(dir);
  logging::LogBundle bundle;
  const std::string rm_app =
      "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
  const std::string rm_client =
      "org.apache.hadoop.yarn.server.resourcemanager.ClientRMService";
  constexpr std::int64_t kEpoch = 1'499'100'000'000;
  for (int stream = 0; stream < 6; ++stream) {
    const std::string name = "rm-" + std::to_string(stream) + ".log";
    bundle.append(name, logging::format_epoch_ms(kEpoch) + " INFO  " + rm_app +
                            ": application_1499100000000_000" +
                            std::to_string(stream + 1) +
                            " State change from NEW_SAVING to SUBMITTED on "
                            "event = APP_NEW_SAVED");
    for (int i = 0; i < 25'000; ++i) {
      bundle.append(name, logging::format_epoch_ms(kEpoch + i) + " INFO  " +
                              rm_client + ": Allocated new applicationId: " +
                              std::to_string(i));
    }
  }
  bundle.write_to_directory(dir);
  return dir;
}

TEST(ShardedMinerSpans, WorkersEmitWellFormedSpansOnDistinctTracks) {
  const std::filesystem::path dir = write_span_corpus();
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  checker::MinerOptions options;
  options.threads = 4;
  checker::LogMiner miner(options);
  const checker::MineResult mined = miner.mine_directory(dir);
  tracer.set_enabled(false);
  std::filesystem::remove_all(dir);
  ASSERT_GT(mined.events.size(), 0u);

  const std::vector<SpanRecord> spans = tracer.snapshot();
  tracer.clear();

  std::size_t chunks = 0;
  std::set<std::uint32_t> chunk_tracks;
  bool saw_total = false;
  for (const SpanRecord& span : spans) {
    if (span.name == "mine.chunk") {
      ++chunks;
      chunk_tracks.insert(span.track);
    }
    if (span.name == "mine.total") saw_total = true;
  }
  EXPECT_TRUE(saw_total);
  EXPECT_GT(chunks, 1u);
  // With shard_grain=1 on a multi-stream corpus and 4 workers, more than
  // one pool thread must have mined chunks.
  EXPECT_GT(chunk_tracks.size(), 1u);

  // Well-formed nesting per track: any two spans on one track are either
  // disjoint or one contains the other (RAII guarantees it; the export
  // depends on it).
  std::map<std::uint32_t, std::vector<const SpanRecord*>> by_track;
  for (const SpanRecord& span : spans) by_track[span.track].push_back(&span);
  for (const auto& [track, records] : by_track) {
    for (std::size_t i = 0; i < records.size(); ++i) {
      for (std::size_t j = i + 1; j < records.size(); ++j) {
        const std::uint64_t a0 = records[i]->start_us;
        const std::uint64_t a1 = a0 + records[i]->dur_us;
        const std::uint64_t b0 = records[j]->start_us;
        const std::uint64_t b1 = b0 + records[j]->dur_us;
        const bool disjoint = a1 <= b0 || b1 <= a0;
        const bool a_in_b = b0 <= a0 && a1 <= b1;
        const bool b_in_a = a0 <= b0 && b1 <= a1;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "track " << track << ": [" << a0 << "," << a1 << ") vs ["
            << b0 << "," << b1 << ")";
      }
    }
  }

  // And the rendered self-profile must satisfy the trace schema.
  const TraceCheckResult result = check_trace_json(spans_trace_json(spans));
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

// --- progress meter ----------------------------------------------------------

TEST(Progress, RateAndEtaFromSamples) {
  ProgressMeter meter(1000);
  meter.sample(0, 0.0);
  EXPECT_EQ(meter.rate(), 0.0);
  EXPECT_FALSE(meter.eta_s().has_value());
  meter.sample(100, 1.0);
  EXPECT_GT(meter.rate(), 0.0);
  const auto eta = meter.eta_s();
  ASSERT_TRUE(eta.has_value());
  EXPECT_GT(*eta, 0.0);
  // Past the total: no ETA.
  meter.sample(1000, 5.0);
  EXPECT_FALSE(meter.eta_s().has_value());
}

TEST(Progress, UnknownTotalShowsRateOnly) {
  ProgressMeter meter(0);
  meter.sample(0, 0.0);
  meter.sample(500, 1.0);
  EXPECT_FALSE(meter.eta_s().has_value());
  const std::string line = meter.render();
  EXPECT_EQ(line.find('%'), std::string::npos);
  EXPECT_NE(line.find("lines/s"), std::string::npos);
}

TEST(Progress, RenderContainsPercentAndEta) {
  ProgressMeter meter(1'000'000);
  meter.sample(0, 0.0);
  meter.sample(123'000, 1.0);
  const std::string line = meter.render();
  EXPECT_NE(line.find('%'), std::string::npos);
  EXPECT_NE(line.find("lines"), std::string::npos);
  EXPECT_NE(line.find("ETA"), std::string::npos);
}

TEST(Progress, HumanizeCount) {
  EXPECT_EQ(humanize_count(999), "999");
  EXPECT_EQ(humanize_count(1234), "1.2k");
  EXPECT_EQ(humanize_count(2'500'000), "2.5M");
  EXPECT_EQ(humanize_count(3'000'000'000.0), "3.0G");
}

TEST(Progress, HumanizeSeconds) {
  EXPECT_EQ(humanize_seconds(4.2), "4s");
  EXPECT_EQ(humanize_seconds(125), "2m05s");
  EXPECT_EQ(humanize_seconds(3700), "1h01m");
}

// --- diagnostics report ordering --------------------------------------------

TEST(DiagnosticsOrder, SeverityThenKindThenStreamThenLine) {
  using logging::Diagnostic;
  using logging::DiagnosticKind;
  std::vector<Diagnostic> diags;
  diags.push_back({DiagnosticKind::kTimestampRegression, "b.log", 5, 1, ""});
  diags.push_back({DiagnosticKind::kBinaryGarbage, "z.log", 9, 1, ""});
  diags.push_back({DiagnosticKind::kUnreadableFile, "a.log", 0, 1, ""});
  diags.push_back({DiagnosticKind::kBinaryGarbage, "a.log", 2, 1, ""});
  diags.push_back({DiagnosticKind::kRotationGap, "a.log", 1, 1, ""});
  diags.push_back({DiagnosticKind::kTruncatedLine, "a.log", 7, 1, ""});

  logging::sort_diagnostics(diags);

  // Severity 0 (lost input) first.
  EXPECT_EQ(diags[0].kind, DiagnosticKind::kUnreadableFile);
  // Severity 1: garbage before truncation (enum order), streams sorted.
  EXPECT_EQ(diags[1].kind, DiagnosticKind::kBinaryGarbage);
  EXPECT_EQ(diags[1].stream, "a.log");
  EXPECT_EQ(diags[2].kind, DiagnosticKind::kBinaryGarbage);
  EXPECT_EQ(diags[2].stream, "z.log");
  EXPECT_EQ(diags[3].kind, DiagnosticKind::kTruncatedLine);
  // Severity 2 last.
  EXPECT_EQ(diags[4].kind, DiagnosticKind::kRotationGap);
  EXPECT_EQ(diags[5].kind, DiagnosticKind::kTimestampRegression);
}

TEST(DiagnosticsOrder, SortIsStableWithinEqualKeys) {
  using logging::Diagnostic;
  using logging::DiagnosticKind;
  std::vector<Diagnostic> diags;
  diags.push_back({DiagnosticKind::kBinaryGarbage, "a.log", 3, 1, "first"});
  diags.push_back({DiagnosticKind::kBinaryGarbage, "a.log", 3, 2, "second"});
  logging::sort_diagnostics(diags);
  EXPECT_EQ(diags[0].detail, "first");
  EXPECT_EQ(diags[1].detail, "second");
}

}  // namespace
}  // namespace sdc::obs
