// Property-based tests (parameterized sweeps).
//
// 1. Scenario sweep: across executors x input size x scheduler x docker x
//    parallel-init, every completed app must satisfy the decomposition
//    invariants and produce a temporally consistent scheduling graph.
// 2. Parser robustness: deterministic corruption of valid log lines must
//    never crash the parser and never produce an event with an invalid id.
// 3. Log-level determinism: identical scenario seeds yield byte-identical
//    log bundles.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

struct SweepParam {
  std::int32_t executors;
  double input_mb;
  yarn::SchedulerKind scheduler;
  bool docker;
  bool parallel_init;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    const char* kind = p.scheduler == yarn::SchedulerKind::kCapacity ? "cap"
                       : p.scheduler == yarn::SchedulerKind::kFair  ? "fair"
                       : p.scheduler == yarn::SchedulerKind::kSampling
                           ? "smp"
                           : "opp";
    return os << "exec" << p.executors << "_in" << p.input_mb << "_" << kind
              << (p.docker ? "_docker" : "") << (p.parallel_init ? "_par" : "");
  }
};

class ScenarioSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScenarioSweep, DecompositionInvariantsHold) {
  const SweepParam& param = GetParam();
  harness::ScenarioConfig scenario;
  scenario.seed = 1234;
  scenario.yarn.scheduler = param.scheduler;
  for (int i = 0; i < 3; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 12 * i);
    plan.app = workloads::make_tpch_query(1 + i * 5, param.input_mb,
                                          param.executors);
    plan.app.docker = param.docker;
    plan.app.parallel_init = param.parallel_init;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 3u);
  ASSERT_FALSE(result.hit_time_cap);

  const auto analysis = checker::SdChecker().analyze(result.logs);
  ASSERT_EQ(analysis.delays.size(), 3u);
  for (const auto& [app, delays] : analysis.delays) {
    ASSERT_TRUE(delays.total && delays.am && delays.driver && delays.executor &&
                delays.in_app && delays.out_app && delays.cf && delays.cl)
        << app.str();
    EXPECT_GT(*delays.total, 0);
    EXPECT_GT(*delays.am, 0);
    EXPECT_GT(*delays.driver, 0);
    EXPECT_GT(*delays.executor, 0);
    EXPECT_GE(*delays.out_app, 0);
    EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
    EXPECT_LE(*delays.am, *delays.total);
    EXPECT_LE(*delays.driver, *delays.am);
    EXPECT_LE(*delays.cf, *delays.cl);
    EXPECT_GE(*delays.cl_minus_cf, 0);
    EXPECT_EQ(delays.worker_launchings().size(),
              static_cast<std::size_t>(param.executors));
    for (const std::int64_t v : delays.worker_localizations()) EXPECT_GE(v, 0);
    for (const std::int64_t v : delays.worker_queuings()) EXPECT_GE(v, 0);
    for (const std::int64_t v : delays.worker_launchings()) EXPECT_GT(v, 0);
    EXPECT_TRUE(analysis.graph_for(app).validate().empty());
  }
  // No anomalies on a healthy run without over-requesting.
  EXPECT_TRUE(
      analysis.anomalies_of(checker::AnomalyType::kNeverUsedContainer).empty());
  EXPECT_TRUE(
      analysis.anomalies_of(checker::AnomalyType::kNegativeInterval).empty());
}

INSTANTIATE_TEST_SUITE_P(
    ExecutorSweep, ScenarioSweep,
    ::testing::Values(SweepParam{2, 2048, yarn::SchedulerKind::kCapacity,
                                 false, false},
                      SweepParam{4, 2048, yarn::SchedulerKind::kCapacity,
                                 false, false},
                      SweepParam{8, 2048, yarn::SchedulerKind::kCapacity,
                                 false, false},
                      SweepParam{16, 2048, yarn::SchedulerKind::kCapacity,
                                 false, false}));

INSTANTIATE_TEST_SUITE_P(
    InputSweep, ScenarioSweep,
    ::testing::Values(SweepParam{4, 20, yarn::SchedulerKind::kCapacity, false,
                                 false},
                      SweepParam{4, 20 * 1024, yarn::SchedulerKind::kCapacity,
                                 false, false}));

INSTANTIATE_TEST_SUITE_P(
    ModeSweep, ScenarioSweep,
    ::testing::Values(SweepParam{4, 2048, yarn::SchedulerKind::kOpportunistic,
                                 false, false},
                      SweepParam{4, 2048, yarn::SchedulerKind::kFair, false,
                                 false},
                      SweepParam{4, 2048, yarn::SchedulerKind::kSampling,
                                 false, false},
                      SweepParam{4, 2048, yarn::SchedulerKind::kCapacity, true,
                                 false},
                      SweepParam{4, 2048, yarn::SchedulerKind::kCapacity,
                                 false, true},
                      SweepParam{8, 512, yarn::SchedulerKind::kOpportunistic,
                                 true, true}));

// --- parser corruption property ---------------------------------------------

class ParserCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserCorruption, NeverCrashesNeverFabricatesIds) {
  // Generate a healthy run once, then corrupt its lines deterministically.
  static const harness::ScenarioResult base = [] {
    harness::ScenarioConfig scenario;
    scenario.seed = 5;
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1);
    plan.app = workloads::make_tpch_query(1, 1024, 2);
    scenario.spark_jobs.push_back(std::move(plan));
    return harness::run_scenario(scenario);
  }();

  Rng rng(GetParam());
  logging::LogBundle corrupted;
  for (const auto& name : base.logs.stream_names()) {
    for (std::string line : base.logs.lines(name)) {
      const double roll = rng.uniform(0, 1);
      if (roll < 0.10 && !line.empty()) {
        // Truncate at a random point.
        line.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1)));
      } else if (roll < 0.20 && !line.empty()) {
        // Flip a random byte to a random printable char.
        line[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(line.size()) - 1))] =
            static_cast<char>(rng.uniform_int(32, 126));
      } else if (roll < 0.25) {
        // Interleave garbage.
        corrupted.append(name, "!!! interleaved write from another thread");
      }
      corrupted.append(name, std::move(line));
    }
  }
  const auto analysis = checker::SdChecker().analyze(corrupted);
  // Every surviving event carries structurally valid ids.
  for (const auto& [app, timeline] : analysis.timelines) {
    EXPECT_GT(app.id, 0);
    for (const auto& [cid, _] : timeline.containers) {
      EXPECT_EQ(cid.app.cluster_ts, app.cluster_ts);
    }
  }
  // Decomposition never throws; aggregates render.
  (void)analysis.aggregate.render_text();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserCorruption,
                         ::testing::Range<std::uint64_t>(0, 8));

// --- determinism ---------------------------------------------------------------

TEST(Determinism, IdenticalSeedsGiveByteIdenticalLogs) {
  const auto run = [] {
    harness::ScenarioConfig scenario;
    scenario.seed = 77;
    for (int i = 0; i < 3; ++i) {
      harness::SparkSubmissionPlan plan;
      plan.at = seconds(1 + 4 * i);
      plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
      scenario.spark_jobs.push_back(std::move(plan));
    }
    return harness::run_scenario(scenario);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.logs.stream_names(), b.logs.stream_names());
  for (const auto& name : a.logs.stream_names()) {
    ASSERT_EQ(a.logs.lines(name), b.logs.lines(name)) << name;
  }
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Determinism, DifferentSeedsGiveDifferentDelays) {
  const auto total_for_seed = [](std::uint64_t seed) {
    harness::ScenarioConfig scenario;
    scenario.seed = seed;
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1);
    plan.app = workloads::make_tpch_query(1, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
    const auto result = harness::run_scenario(scenario);
    const auto analysis = checker::SdChecker().analyze(result.logs);
    return *analysis.delays.begin()->second.total;
  };
  EXPECT_NE(total_for_seed(1), total_for_seed(2));
}

}  // namespace
}  // namespace sdc
