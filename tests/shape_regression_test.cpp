// Shape-regression tests: miniature versions of each paper experiment
// asserting the *direction* of every headline finding, so calibration
// changes cannot silently flip a conclusion.  (The full-size experiments
// live in bench/; these use small job counts to stay fast.)
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/generators.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

/// Runs `jobs` SQL queries with a tweak applied to each config.
template <typename Tweak>
checker::AggregateReport run_sql(std::uint64_t seed, int jobs, Tweak tweak,
                                 yarn::SchedulerKind scheduler =
                                     yarn::SchedulerKind::kCapacity) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  scenario.yarn.scheduler = scheduler;
  scenario.extra_horizon = seconds(8 * 3600);
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 8 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    tweak(plan.app, i);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  return analysis.aggregate;
}

// --- Fig. 4 headline: Spark causes most of the delay -------------------------

TEST(Shape, InApplicationDominatesTotal) {
  const auto report = run_sql(201, 10, [](auto&, int) {});
  EXPECT_GT(report.in_app.median(), report.out_app.median() * 1.5);
}

// --- Fig. 5: larger inputs -> larger absolute delay ---------------------------

TEST(Shape, LargerInputLargerDelay) {
  const auto small = run_sql(202, 8, [](spark::SparkAppConfig& app, int) {
    app = workloads::make_tpch_query(1, 20, 4);
  });
  const auto big = run_sql(202, 8, [](spark::SparkAppConfig& app, int) {
    app = workloads::make_tpch_query(1, 60 * 1024, 4);
  });
  EXPECT_GT(big.total.median(), small.total.median() * 1.2);
}

// --- Fig. 6: more executors -> bigger Cl-Cf spread ----------------------------

TEST(Shape, MoreExecutorsWiderClCf) {
  const auto few = run_sql(203, 8, [](spark::SparkAppConfig& app, int) {
    app.num_executors = 4;
  });
  const auto many = run_sql(203, 8, [](spark::SparkAppConfig& app, int) {
    app.num_executors = 16;
  });
  EXPECT_GT(many.cl_minus_cf.median(), few.cl_minus_cf.median());
}

// --- Fig. 7-a: distributed allocation is much faster --------------------------

TEST(Shape, DistributedAllocationOrdersOfMagnitudeFaster) {
  const auto centralized = run_sql(204, 8, [](auto&, int) {});
  const auto distributed = run_sql(204, 8, [](auto&, int) {},
                                   yarn::SchedulerKind::kOpportunistic);
  EXPECT_GT(centralized.alloc.median(), distributed.alloc.median() * 20);
}

// --- Fig. 8: bigger localized files -> longer localization --------------------

TEST(Shape, LocalizationScalesWithPackage) {
  const auto small = run_sql(205, 6, [](spark::SparkAppConfig& app, int) {
    app.extra_localized_mb = 0;
  });
  const auto big = run_sql(205, 6, [](spark::SparkAppConfig& app, int) {
    app.extra_localized_mb = 7680;
  });
  EXPECT_GT(big.localization.median(), small.localization.median() * 10);
}

// --- Fig. 9-b: Docker adds launch overhead ------------------------------------

TEST(Shape, DockerSlowerLaunch) {
  const auto plain = run_sql(206, 10, [](spark::SparkAppConfig& app, int) {
    app.docker = false;
  });
  const auto docker = run_sql(206, 10, [](spark::SparkAppConfig& app, int) {
    app.docker = true;
  });
  EXPECT_GT(docker.launching.median(), plain.launching.median() + 0.15);
}

// --- Fig. 11: SQL executor delay > wordcount; parallel init helps ---------------

TEST(Shape, SqlExecutorDelayExceedsWordcount) {
  const auto sql = run_sql(207, 10, [](auto&, int) {});
  const auto wordcount = run_sql(207, 10, [](spark::SparkAppConfig& app, int i) {
    app = workloads::make_spark_wordcount(2048, 4);
    app.name += std::to_string(i);
  });
  EXPECT_GT(sql.executor.median(), wordcount.executor.median() * 1.3);
  // Driver delays nearly identical (same SparkContext code).
  EXPECT_NEAR(sql.driver.median(), wordcount.driver.median(),
              sql.driver.median() * 0.3);
}

TEST(Shape, ParallelInitShortensExecutorDelay) {
  const auto serial = run_sql(208, 10, [](spark::SparkAppConfig& app, int) {
    app.parallel_init = false;
  });
  const auto parallel = run_sql(208, 10, [](spark::SparkAppConfig& app, int) {
    app.parallel_init = true;
  });
  EXPECT_LT(parallel.executor.median(), serial.executor.median() - 1.0);
}

// --- Figs. 12/13 fingerprints ---------------------------------------------------

TEST(Shape, IoInterferenceHitsLocalizationHardest) {
  harness::ScenarioConfig scenario;
  scenario.seed = 209;
  scenario.extra_horizon = seconds(8 * 3600);
  harness::MrSubmissionPlan dfsio;
  dfsio.at = 0;
  dfsio.app = workloads::make_dfsio(80, seconds(240));
  scenario.mr_jobs.push_back(std::move(dfsio));
  for (int i = 0; i < 6; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(30 + 10 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto sim = harness::run_scenario(scenario);
  const auto loaded = checker::SdChecker().analyze(sim.logs);
  // Victims only — the dfsIO app's own (early, small-package) map
  // localizations must not dilute the measurement.
  SampleSet localization;
  SampleSet driver;
  for (const auto& job : sim.jobs) {
    if (job.kind != spark::AppKind::kSparkSql) continue;
    const auto it = loaded.delays.find(job.app);
    if (it == loaded.delays.end()) continue;
    if (it->second.driver) {
      driver.add(static_cast<double>(*it->second.driver) / 1000.0);
    }
    for (const std::int64_t loc : it->second.worker_localizations()) {
      localization.add(static_cast<double>(loc) / 1000.0);
    }
  }
  const auto idle = run_sql(209, 6, [](auto&, int) {});
  const double loc_slowdown =
      localization.median() / idle.localization.median();
  const double driver_slowdown = driver.median() / idle.driver.median();
  EXPECT_GT(loc_slowdown, 4.0);               // transfers hammered
  EXPECT_GT(loc_slowdown, driver_slowdown);   // ... harder than CPU paths
}

TEST(Shape, CpuInterferenceHitsInAppHardest) {
  harness::ScenarioConfig scenario;
  scenario.seed = 210;
  scenario.extra_horizon = seconds(8 * 3600);
  for (int i = 0; i < 16; ++i) {
    harness::SparkSubmissionPlan kmeans;
    kmeans.at = millis(200) * i;
    kmeans.app = workloads::make_kmeans(seconds(240));
    scenario.spark_jobs.push_back(std::move(kmeans));
  }
  for (int i = 0; i < 6; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(30 + 10 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    plan.app.name = "victim-" + plan.app.name;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto sim = harness::run_scenario(scenario);
  const auto loaded = checker::SdChecker().analyze(sim.logs);
  // Victims only (exclude the Kmeans apps themselves).
  SampleSet driver;
  SampleSet localization;
  for (const auto& job : sim.jobs) {
    if (job.name.rfind("victim-", 0) != 0) continue;
    const auto it = loaded.delays.find(job.app);
    if (it == loaded.delays.end()) continue;
    if (it->second.driver) {
      driver.add(static_cast<double>(*it->second.driver) / 1000.0);
    }
    for (const std::int64_t loc : it->second.worker_localizations()) {
      localization.add(static_cast<double>(loc) / 1000.0);
    }
  }
  const auto idle = run_sql(210, 6, [](auto&, int) {});
  const double driver_slowdown = driver.median() / idle.driver.median();
  const double loc_slowdown =
      localization.median() / idle.localization.median();
  EXPECT_GT(driver_slowdown, 1.6);           // JVM paths hammered
  EXPECT_GT(driver_slowdown, loc_slowdown);  // ... harder than transfers
}

}  // namespace
}  // namespace sdc
