// Tests for the HiBench-style workload catalog: structural knobs and a
// mixed-zoo integration run.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/hibench.hpp"

namespace sdc::workloads {
namespace {

TEST(HiBench, TerasortShape) {
  const auto config = make_terasort(50 * 1024, 8);
  EXPECT_EQ(config.files_opened, 1);
  EXPECT_EQ(config.num_stages, 2);
  EXPECT_GT(config.scan_io_units, 20.0);  // shuffle-heavy
  EXPECT_EQ(config.input_file, "terasort-input");
}

TEST(HiBench, PagerankShape) {
  const auto config = make_pagerank(4096, 4, 10);
  EXPECT_EQ(config.num_stages, 10);
  EXPECT_GT(config.cpu_units_while_running, 0.0);
  // Iterations grow the runtime.
  EXPECT_GT(make_pagerank(4096, 4, 12).execution_median,
            make_pagerank(4096, 4, 4).execution_median);
}

TEST(HiBench, BayesBetweenWordcountAndSql) {
  const auto config = make_bayes(2048, 4);
  EXPECT_GT(config.files_opened, 1);
  EXPECT_LT(config.files_opened, 8);
}

TEST(HiBench, InteractiveScanIsTinyAndShort) {
  const auto scan = make_interactive_scan(256, 2);
  EXPECT_EQ(scan.num_stages, 1);
  EXPECT_LT(scan.execution_median, seconds(5));
}

TEST(HiBench, MixedZooRunsCleanThroughSdchecker) {
  harness::ScenarioConfig scenario;
  scenario.seed = 901;
  scenario.extra_horizon = seconds(8 * 3600);
  int at = 0;
  const auto submit = [&](spark::SparkAppConfig app) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(2 + 10 * at++);
    plan.app = std::move(app);
    scenario.spark_jobs.push_back(std::move(plan));
  };
  submit(make_terasort(8 * 1024, 6));
  submit(make_pagerank(2048, 4, 6));
  submit(make_bayes(2048, 4));
  submit(make_interactive_scan(256, 2));
  const auto result = harness::run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 4u);
  EXPECT_FALSE(result.hit_time_cap);

  const auto analysis = checker::SdChecker().analyze(result.logs);
  ASSERT_EQ(analysis.delays.size(), 4u);
  for (const auto& [app, delays] : analysis.delays) {
    ASSERT_TRUE(delays.total && delays.in_app && delays.out_app) << app.str();
    EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
    EXPECT_TRUE(analysis.graph_for(app).validate().empty());
  }
  // The interactive scan spends proportionally the most time scheduling —
  // the paper's headline about tiny-and-short jobs.
  double scan_ratio = 0;
  double terasort_ratio = 0;
  for (const auto& job : result.jobs) {
    const auto& delays = analysis.delays.at(job.app);
    const double ratio =
        static_cast<double>(*delays.total) /
        (static_cast<double>(to_millis(job.finished_at - job.submitted_at)));
    if (job.name == "hibench-scan") scan_ratio = ratio;
    if (job.name == "hibench-terasort") terasort_ratio = ratio;
  }
  EXPECT_GT(scan_ratio, terasort_ratio);
}

}  // namespace
}  // namespace sdc::workloads
