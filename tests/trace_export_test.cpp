// Scheduling-graph trace export: the Perfetto document built from an
// AnalysisResult must carry every delay component as a slice, validate
// against the trace schema, rebase timestamps, and skip unrenderable
// (missing-anchor or negative) spans.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_check.hpp"
#include "sdchecker/grouping.hpp"
#include "sdchecker/sdchecker.hpp"
#include "sdchecker/trace_export.hpp"

namespace sdc::checker {
namespace {

constexpr std::int64_t kT0 = 1'499'100'000'000;

/// A fully-populated application: AM plus two staggered workers, every
/// Table-I anchor present, all component spans strictly positive.
AppTimeline full_timeline(std::int32_t app_seq) {
  AppTimeline timeline;
  timeline.app = ApplicationId{kT0, app_seq};
  const std::int64_t base = kT0 + app_seq * 10'000;

  const auto app_event = [&](EventKind kind, std::int64_t offset_ms) {
    timeline.first_ts[kind] = base + offset_ms;
    timeline.counts[kind] = 1;
  };
  app_event(EventKind::kAppSubmitted, 0);
  app_event(EventKind::kAppAccepted, 10);
  app_event(EventKind::kAttemptRegistered, 200);
  app_event(EventKind::kDriverFirstLog, 300);
  app_event(EventKind::kDriverRegister, 400);
  app_event(EventKind::kStartAllo, 450);
  app_event(EventKind::kEndAllo, 500);

  const auto add_container = [&](std::int64_t seq, std::int64_t offset_ms,
                                 bool worker) {
    const ContainerId id{timeline.app, 1, seq};
    ContainerTimeline& container = timeline.containers[id];
    container.id = id;
    const auto event = [&](EventKind kind, std::int64_t at_ms) {
      container.first_ts[kind] = base + offset_ms + at_ms;
      container.counts[kind] = 1;
    };
    event(EventKind::kContainerAllocated, 0);
    event(EventKind::kContainerAcquired, 20);
    event(EventKind::kNmLocalizing, 40);
    event(EventKind::kNmScheduled, 60);
    event(EventKind::kNmRunning, 100);
    if (worker) {
      event(EventKind::kExecutorFirstLog, 200);
      event(EventKind::kExecutorFirstTask, 300);
    }
  };
  add_container(1, 50, false);
  add_container(2, 500, true);
  add_container(3, 600, true);
  return timeline;
}

AnalysisResult analyze_timelines(std::vector<AppTimeline> timelines) {
  std::map<ApplicationId, AppTimeline> map;
  for (AppTimeline& t : timelines) {
    const ApplicationId app = t.app;
    map.emplace(app, std::move(t));
  }
  return finalize_analysis(std::move(map));
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceExport, CatalogCoversAggregateMetricsBothWays) {
  const AnalysisResult result = analyze_timelines({full_timeline(1)});
  const auto metrics = result.aggregate.metrics();
  const auto specs = delay_component_specs();
  ASSERT_EQ(metrics.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(metrics[i].first, specs[i].metric) << "catalog row " << i;
  }
}

TEST(TraceExport, FullTimelineCarriesAllComponentSlices) {
  const AnalysisResult result = analyze_timelines({full_timeline(1)});
  const std::string trace = scheduling_trace_json(result);

  obs::TraceCheckOptions options;
  options.required_process_prefix = "application_";
  for (const DelayComponentSpec& spec : delay_component_specs()) {
    options.required_slices.emplace_back(spec.slice);
  }
  const obs::TraceCheckResult check = obs::check_trace_json(trace, options);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(check.processes, 1u);
}

TEST(TraceExport, RequiredAppSlicesSatisfyCliCheckContract) {
  const AnalysisResult result = analyze_timelines({full_timeline(1)});
  const std::string trace = scheduling_trace_json(result);

  obs::TraceCheckOptions options;
  options.required_process_prefix = "application_";
  for (const std::string_view slice : required_app_slices()) {
    options.required_slices.emplace_back(slice);
  }
  EXPECT_EQ(options.required_slices.size(), 7u);
  const obs::TraceCheckResult check = obs::check_trace_json(trace, options);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST(TraceExport, OneProcessPerApplication) {
  const AnalysisResult result =
      analyze_timelines({full_timeline(1), full_timeline(2), full_timeline(3)});
  obs::TraceEventWriter writer;
  const std::size_t apps = append_scheduling_trace(writer, result);
  EXPECT_EQ(apps, 3u);
  const obs::TraceCheckResult check = obs::check_trace_json(writer.finish());
  EXPECT_TRUE(check.ok);
  EXPECT_EQ(check.processes, 3u);
}

TEST(TraceExport, TimestampsAreRebasedToCorpusStart) {
  const AnalysisResult result = analyze_timelines({full_timeline(1)});
  const std::string trace = scheduling_trace_json(result);
  // The earliest event (SUBMITTED) must land at ts 0, and no epoch-scale
  // timestamp value may survive rebasing.  (The epoch number itself still
  // appears inside application/container id strings — only "ts" fields
  // matter here.)
  EXPECT_NE(trace.find("\"ts\":0"), std::string::npos);
  // Catches both non-rebased forms: epoch-ms, and epoch-us (whose decimal
  // rendering starts with the same digits).
  EXPECT_EQ(trace.find("\"ts\":" + std::to_string(kT0)), std::string::npos);
}

TEST(TraceExport, MilestoneInstantsPresent) {
  const AnalysisResult result = analyze_timelines({full_timeline(1)});
  const std::string trace = scheduling_trace_json(result);
  EXPECT_NE(trace.find("\"milestones\""), std::string::npos);
  EXPECT_NE(trace.find("\"SUBMITTED\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TraceExport, PerContainerChainsOnContainerTracks) {
  const AnalysisResult result = analyze_timelines({full_timeline(1)});
  const std::string trace = scheduling_trace_json(result);
  // Three container tracks (AM + 2 workers) named by container id.
  EXPECT_EQ(count_occurrences(trace, "\"container_"), 3u);
  // exec-idle only exists for the two workers; the AM has none.
  EXPECT_EQ(count_occurrences(trace, "\"name\":\"exec-idle\""), 2u);
  // acquisition appears once per container.
  EXPECT_EQ(count_occurrences(trace, "\"name\":\"acquisition\""), 3u);
}

TEST(TraceExport, MissingAnchorsEmitNoSlice) {
  AppTimeline timeline = full_timeline(1);
  timeline.first_ts.erase(EventKind::kStartAllo);
  timeline.first_ts.erase(EventKind::kEndAllo);
  const AnalysisResult result = analyze_timelines({std::move(timeline)});
  const std::string trace = scheduling_trace_json(result);
  EXPECT_EQ(trace.find("\"name\":\"alloc\""), std::string::npos);
  // The document must still validate; alloc is simply absent.
  EXPECT_TRUE(obs::check_trace_json(trace).ok);
}

TEST(TraceExport, NegativeSpansAreSkippedNotClamped) {
  AppTimeline timeline = full_timeline(1);
  // Clock skew: END_ALLO before START_ALLO.
  timeline.first_ts[EventKind::kEndAllo] =
      timeline.first_ts[EventKind::kStartAllo] - 100;
  const AnalysisResult result = analyze_timelines({std::move(timeline)});
  const std::string trace = scheduling_trace_json(result);
  EXPECT_EQ(trace.find("\"name\":\"alloc\""), std::string::npos);
  const obs::TraceCheckResult check = obs::check_trace_json(trace);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST(TraceExport, EmptyAnalysisProducesValidEmptyDocument) {
  const AnalysisResult result = analyze_timelines({});
  const std::string trace = scheduling_trace_json(result);
  const obs::TraceCheckResult check = obs::check_trace_json(trace);
  EXPECT_TRUE(check.ok);
  EXPECT_EQ(check.events, 0u);
  EXPECT_EQ(check.processes, 0u);
}

TEST(TraceExport, SliceWidthsMatchReportedDelays) {
  const AppTimeline timeline = full_timeline(1);
  const AnalysisResult result = analyze_timelines({timeline});
  ASSERT_EQ(result.delays.size(), 1u);
  const Delays& delays = result.delays.begin()->second;
  const std::string trace = scheduling_trace_json(result);

  // total = SUBMITTED -> first worker FIRST_TASK = 800 ms in the synthetic
  // layout; the slice must be exactly that span in microseconds.
  ASSERT_TRUE(delays.total.has_value());
  EXPECT_EQ(*delays.total, 800);
  EXPECT_NE(trace.find("\"name\":\"total\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":800000"), std::string::npos);
}

}  // namespace
}  // namespace sdc::checker
