// Robustness tests for the miner and decomposer on degenerate inputs:
// empty bundles, garbage-only streams, MR-only corpora, partial chains.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/mr_app.hpp"

namespace sdc::checker {
namespace {

constexpr std::int64_t kEpoch = 1'499'100'000'000;

std::string line(std::int64_t offset_ms, const std::string& cls,
                 const std::string& message) {
  return logging::format_epoch_ms(kEpoch + offset_ms) + " INFO  " + cls + ": " +
         message;
}

TEST(MinerRobustness, EmptyBundle) {
  const AnalysisResult result = SdChecker().analyze(logging::LogBundle{});
  EXPECT_EQ(result.timelines.size(), 0u);
  EXPECT_EQ(result.lines_total, 0u);
  EXPECT_TRUE(result.anomalies.empty());
  EXPECT_EQ(result.aggregate.app_count(), 0u);
  (void)result.aggregate.render_text();  // must not throw on empty
}

TEST(MinerRobustness, GarbageOnlyStream) {
  logging::LogBundle bundle;
  bundle.append("junk.log", "not a log line");
  bundle.append("junk.log", "");
  bundle.append("junk.log", "\tat java.lang.Thread.run(Thread.java:745)");
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_EQ(result.lines_total, 3u);
  EXPECT_EQ(result.lines_unparsed, 3u);
  EXPECT_EQ(result.events_total, 0u);
}

TEST(MinerRobustness, UnknownClassesParseButYieldNoEvents) {
  logging::LogBundle bundle;
  bundle.append("other.log",
                line(0, "com.example.Unrelated", "some business log"));
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_EQ(result.lines_unparsed, 0u);
  EXPECT_EQ(result.events_total, 0u);  // unknown stream: no FIRST_LOG
}

TEST(MinerRobustness, ExecutorStreamWithoutContainerIdIsUnattributed) {
  logging::LogBundle bundle;
  bundle.append("exec.log",
                line(0, "org.apache.spark.executor.CoarseGrainedExecutorBackend",
                     "Started daemon with process name: 1@x"));
  const AnalysisResult result = SdChecker().analyze(bundle);
  // FIRST_LOG synthesized but no id to bind to: counted, not attributed.
  EXPECT_EQ(result.events_total, 1u);
  EXPECT_EQ(result.events_unattributed, 1u);
  EXPECT_TRUE(result.timelines.empty());
}

TEST(MinerRobustness, DuplicatedRmLinesKeepFirstTimestamp) {
  logging::LogBundle bundle;
  const std::string cls =
      "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
  const std::string msg =
      "application_1499100000000_0001 State change from NEW_SAVING to "
      "SUBMITTED on event = APP_NEW_SAVED";
  bundle.append("rm.log", line(100, cls, msg));
  bundle.append("rm.log", line(500, cls, msg));  // duplicated flush
  const AnalysisResult result = SdChecker().analyze(bundle);
  ASSERT_EQ(result.timelines.size(), 1u);
  const AppTimeline& timeline = result.timelines.begin()->second;
  EXPECT_EQ(timeline.ts(EventKind::kAppSubmitted), kEpoch + 100);
  EXPECT_EQ(timeline.counts.at(EventKind::kAppSubmitted), 2);
}

TEST(MinerRobustness, MapReduceOnlyCorpusDecomposesPartially) {
  // An MR app has driver-register and launching events but no Spark
  // FIRST_TASK: total must be absent, am/launching present.
  harness::ScenarioConfig scenario;
  scenario.seed = 41;
  harness::MrSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app.num_maps = 4;
  plan.app.num_reduces = 1;
  plan.app.map_duration_median = seconds(3);
  scenario.mr_jobs.push_back(std::move(plan));
  const auto sim = harness::run_scenario(scenario);
  const AnalysisResult result = SdChecker().analyze(sim.logs);
  ASSERT_EQ(result.delays.size(), 1u);
  const Delays& delays = result.delays.begin()->second;
  EXPECT_FALSE(delays.total.has_value());  // no "Got assigned task"
  EXPECT_TRUE(delays.am.has_value());
  EXPECT_TRUE(delays.driver.has_value());  // MRAppMaster register
  EXPECT_FALSE(delays.alloc.has_value());  // no START/END_ALLO in MR
  EXPECT_EQ(delays.worker_launchings().size(), 5u);  // YarnChild first logs
  for (const std::int64_t launching : delays.worker_launchings()) {
    EXPECT_GT(launching, 0);
  }
}

TEST(MinerRobustness, TwoAppsInterleavedInOneRmLog) {
  logging::LogBundle bundle;
  const std::string cls =
      "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
  bundle.append("rm.log",
                line(0, cls,
                     "application_1499100000000_0001 State change from "
                     "NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"));
  bundle.append("rm.log",
                line(5, cls,
                     "application_1499100000000_0002 State change from "
                     "NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"));
  bundle.append("rm.log",
                line(10, cls,
                     "application_1499100000000_0001 State change from "
                     "SUBMITTED to ACCEPTED on event = APP_ACCEPTED"));
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_EQ(result.timelines.size(), 2u);
  EXPECT_TRUE(
      result.timelines.at(ApplicationId{kEpoch, 1}).has(EventKind::kAppAccepted));
  EXPECT_FALSE(
      result.timelines.at(ApplicationId{kEpoch, 2}).has(EventKind::kAppAccepted));
}

TEST(MinerRobustness, FirstLogUsesFileOrderNotMinTimestamp) {
  // The paper's rule is "the first log message" of the instance log —
  // file order.  A skewed later-timestamped first line still wins; this
  // documents the (faithful) behaviour rather than silently re-sorting.
  logging::LogBundle bundle;
  const std::string cls = "org.apache.spark.deploy.yarn.ApplicationMaster";
  bundle.append("driver.log", line(500, cls, "Registered signal handlers"));
  bundle.append("driver.log",
                line(100, cls,
                     "ApplicationAttemptId: appattempt_1499100000000_0001_"
                     "000001"));
  const LogMiner miner;
  const auto mined = miner.mine(bundle);
  for (const auto event : mined.events) {
    if (event.kind == EventKind::kDriverFirstLog) {
      EXPECT_EQ(event.ts_ms, kEpoch + 500);
    }
  }
}

const MinedStream* stream_named(const MineResult& mined,
                                const std::string& name) {
  for (const MinedStream& stream : mined.streams) {
    if (stream.name == name) return &stream;
  }
  return nullptr;
}

TEST(MinerRobustness, RotatedSegmentsReassembledInLogrotateOrder) {
  // The oldest lines live in the highest suffix; the unsuffixed base is
  // the newest.  Reassembly must restore the original line order, so
  // events come out as if the stream had never been rotated — and the
  // regrouping itself is reported as a rotation-gap diagnostic.
  const std::string cls =
      "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
  logging::LogBundle bundle;
  bundle.append("rm.log.2",
                line(0, cls,
                     "application_1499100000000_0001 State change from "
                     "NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"));
  bundle.append("rm.log.1",
                line(200, cls,
                     "application_1499100000000_0001 State change from "
                     "SUBMITTED to ACCEPTED on event = APP_ACCEPTED"));
  bundle.append("rm.log",
                line(400, cls,
                     "application_1499100000000_0001 State change from "
                     "ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"));
  const auto mined = LogMiner().mine(bundle);

  const MinedStream* rm = stream_named(mined, "rm.log");
  ASSERT_NE(rm, nullptr);
  EXPECT_EQ(mined.streams.size(), 1u);  // one logical stream, not three
  EXPECT_EQ(rm->lines_total, 3u);
  EXPECT_EQ(rm->diag_counts.of(logging::DiagnosticKind::kRotationGap), 3u);
  // Correct reassembly keeps time monotonic: no regression diagnostic.
  EXPECT_EQ(rm->diag_counts.of(logging::DiagnosticKind::kTimestampRegression),
            0u);

  const AnalysisResult result = SdChecker().analyze(bundle);
  ASSERT_EQ(result.timelines.size(), 1u);
  const AppTimeline& timeline = result.timelines.begin()->second;
  EXPECT_EQ(timeline.ts(EventKind::kAppSubmitted), kEpoch + 0);
  EXPECT_EQ(timeline.ts(EventKind::kAppAccepted), kEpoch + 200);
  EXPECT_EQ(timeline.ts(EventKind::kAttemptRegistered), kEpoch + 400);
}

TEST(MinerRobustness, MidLineTruncationDiagnosedPerStream) {
  const std::string cls =
      "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
  logging::LogBundle bundle;
  bundle.append("rm.log",
                line(0, cls,
                     "application_1499100000000_0001 State change from "
                     "NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"));
  // The write was cut after the timestamp reached disk.
  bundle.append("rm.log", logging::format_epoch_ms(kEpoch + 100) + " INF");
  bundle.append("clean.log", line(50, "com.example.Fine", "all good"));

  const auto mined = LogMiner().mine(bundle);
  const MinedStream* rm = stream_named(mined, "rm.log");
  ASSERT_NE(rm, nullptr);
  EXPECT_EQ(rm->diag_counts.of(logging::DiagnosticKind::kTruncatedLine), 1u);
  EXPECT_EQ(rm->lines_unparsed, 1u);

  // The clean stream is untouched: no diagnostics, same parse results.
  const MinedStream* clean = stream_named(mined, "clean.log");
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(clean->diag_counts.total(), 0u);
  EXPECT_EQ(clean->lines_unparsed, 0u);

  // Event extraction on the valid rm.log line is unchanged.
  const AnalysisResult result = SdChecker().analyze(bundle);
  ASSERT_EQ(result.timelines.size(), 1u);
  EXPECT_EQ(result.timelines.begin()->second.ts(EventKind::kAppSubmitted),
            kEpoch + 0);
}

TEST(MinerRobustness, HeadTearDiagnosedAsTruncation) {
  logging::LogBundle bundle;
  // The stream begins mid-line: the head was rotated away mid-write.
  bundle.append("nm.log", "ate change from LOCALIZING to LOCALIZED");
  bundle.append("nm.log", line(10, "com.example.Nm", "healthy line"));
  const auto mined = LogMiner().mine(bundle);
  const MinedStream* nm = stream_named(mined, "nm.log");
  ASSERT_NE(nm, nullptr);
  EXPECT_EQ(nm->diag_counts.of(logging::DiagnosticKind::kTruncatedLine), 1u);
}

TEST(MinerRobustness, GarbageBytesDiagnosedEventsSurvive) {
  const std::string cls =
      "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
  logging::LogBundle bundle;
  bundle.append("rm.log",
                line(0, cls,
                     "application_1499100000000_0001 State change from "
                     "NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"));
  bundle.append("rm.log", std::string("\x00\x01\xff\xfe garbage", 12));
  bundle.append("rm.log", std::string("\x00\x00\x00\x00", 4));
  bundle.append("rm.log",
                line(300, cls,
                     "application_1499100000000_0001 State change from "
                     "SUBMITTED to ACCEPTED on event = APP_ACCEPTED"));
  const auto mined = LogMiner().mine(bundle);
  const MinedStream* rm = stream_named(mined, "rm.log");
  ASSERT_NE(rm, nullptr);
  EXPECT_EQ(rm->diag_counts.of(logging::DiagnosticKind::kBinaryGarbage), 2u);
  EXPECT_EQ(rm->lines_unparsed, 2u);

  // Both valid lines still yield their events.
  const AnalysisResult result = SdChecker().analyze(bundle);
  ASSERT_EQ(result.timelines.size(), 1u);
  const AppTimeline& timeline = result.timelines.begin()->second;
  EXPECT_EQ(timeline.ts(EventKind::kAppSubmitted), kEpoch + 0);
  EXPECT_EQ(timeline.ts(EventKind::kAppAccepted), kEpoch + 300);
}

TEST(MinerRobustness, TimestampRegressionBeyondBudgetDiagnosed) {
  logging::LogBundle bundle;
  bundle.append("app.log", line(5000, "com.example.A", "later"));
  bundle.append("app.log", line(0, "com.example.A", "clock stepped back"));
  MinerOptions options;
  options.skew_budget_ms = 1000;
  const auto mined = LogMiner(options).mine(bundle);
  const MinedStream* app = stream_named(mined, "app.log");
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(
      app->diag_counts.of(logging::DiagnosticKind::kTimestampRegression), 1u);

  // Jitter within the budget is normal buffered-appender behaviour.
  logging::LogBundle jitter;
  jitter.append("app.log", line(500, "com.example.A", "later"));
  jitter.append("app.log", line(0, "com.example.A", "small jitter"));
  const auto mined_jitter = LogMiner(options).mine(jitter);
  EXPECT_EQ(mined_jitter.diag_counts.of(
                logging::DiagnosticKind::kTimestampRegression),
            0u);
}

TEST(MinerRobustness, MergedBundlesFromTwoRunsKeepAppsSeparate) {
  harness::ScenarioConfig a;
  a.seed = 51;
  harness::SparkSubmissionPlan plan_a;
  plan_a.at = seconds(1);
  plan_a.app = spark::SparkAppConfig{};
  plan_a.app.name = "a";
  plan_a.app.num_executors = 2;
  plan_a.app.files_opened = 1;
  a.spark_jobs.push_back(std::move(plan_a));
  auto result_a = harness::run_scenario(a);

  // Second run with a different epoch -> different cluster timestamp, so
  // application ids cannot collide even though both are app #1.
  harness::ScenarioConfig b = a;
  b.cluster.epoch_base_ms += 86'400'000;
  auto result_b = harness::run_scenario(b);

  logging::LogBundle merged = std::move(result_a.logs);
  merged.merge(result_b.logs);
  const AnalysisResult analysis = SdChecker().analyze(merged);
  EXPECT_EQ(analysis.timelines.size(), 2u);
}

}  // namespace
}  // namespace sdc::checker
