// Tests for the HDFS block-placement map and the locality fast path it
// enables in the Capacity Scheduler.
#include <gtest/gtest.h>

#include <set>

#include "cluster/block_map.hpp"
#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"
#include "yarn/scheduler.hpp"

namespace sdc {
namespace {

// --- BlockMap ----------------------------------------------------------------

TEST(BlockMap, ReplicationOnDistinctNodes) {
  cluster::BlockMap blocks(25, 3, 1);
  blocks.register_file("f", 40);
  ASSERT_TRUE(blocks.has_file("f"));
  ASSERT_EQ(blocks.locations("f").size(), 40u);
  for (const auto& location : blocks.locations("f")) {
    ASSERT_EQ(location.replicas.size(), 3u);
    std::set<NodeId> distinct(location.replicas.begin(),
                              location.replicas.end());
    EXPECT_EQ(distinct.size(), 3u);
    for (const NodeId& node : location.replicas) {
      EXPECT_GE(node.index, 1);
      EXPECT_LE(node.index, 25);
    }
  }
}

TEST(BlockMap, ReplicationClampedToClusterSize) {
  cluster::BlockMap blocks(2, 3, 1);
  blocks.register_file("f", 1);
  EXPECT_EQ(blocks.locations("f")[0].replicas.size(), 2u);
  EXPECT_EQ(blocks.replication(), 2);
}

TEST(BlockMap, RegistrationIsIdempotent) {
  cluster::BlockMap blocks(10, 3, 2);
  blocks.register_file("f", 5);
  const auto before = blocks.locations("f");
  blocks.register_file("f", 99);  // must keep original placement
  const auto& after = blocks.locations("f");
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].replicas, before[i].replicas);
  }
  EXPECT_EQ(blocks.file_count(), 1u);
}

TEST(BlockMap, NodesWithReplicasDedupes) {
  cluster::BlockMap blocks(5, 3, 3);
  blocks.register_file("big", 50);  // 150 replicas over 5 nodes
  const auto nodes = blocks.nodes_with_replicas("big");
  EXPECT_EQ(nodes.size(), 5u);  // every node holds something
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1], nodes[i]);  // ordered
  }
}

TEST(BlockMap, UnknownFileAndOutOfRangeBlock) {
  cluster::BlockMap blocks(10, 3, 4);
  EXPECT_FALSE(blocks.has_file("missing"));
  EXPECT_TRUE(blocks.locations("missing").empty());
  EXPECT_TRUE(blocks.nodes_with_replicas("missing").empty());
  blocks.register_file("f", 2);
  EXPECT_TRUE(blocks.replicas_of_block("f", -1).empty());
  EXPECT_TRUE(blocks.replicas_of_block("f", 2).empty());
  EXPECT_EQ(blocks.replicas_of_block("f", 1).size(), 3u);
}

TEST(BlockMap, DeterministicForSeed) {
  cluster::BlockMap a(25, 3, 7);
  cluster::BlockMap b(25, 3, 7);
  a.register_file("x", 10);
  b.register_file("x", 10);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.locations("x")[i].replicas, b.locations("x")[i].replicas);
  }
}

// --- locality fast path in the scheduler ------------------------------------------

TEST(LocalityFastPath, PreferredNodeGrantsBeforeEligibility) {
  yarn::CapacityScheduler scheduler(/*locality_fast_path=*/true);
  yarn::PendingAsk ask{ApplicationId{1, 1}, {1, 128}, 1,
                       yarn::InstanceType::kMrMapTask, false};
  ask.eligible_at = seconds(100);
  ask.preferred_nodes = {NodeId{3}};
  scheduler.enqueue(ask);
  cluster::Node other(NodeId{1}, cluster::kNodeCapacity);
  cluster::Node preferred(NodeId{3}, cluster::kNodeCapacity);
  // A non-preferred node heartbeats early: nothing.
  EXPECT_TRUE(scheduler.assign_on_heartbeat(other, 16, millis(10)).empty());
  // The preferred node heartbeats early: granted immediately.
  const auto grants = scheduler.assign_on_heartbeat(preferred, 16, millis(20));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].node, preferred.id());
}

TEST(LocalityFastPath, DisabledPathIgnoresPreferences) {
  yarn::CapacityScheduler scheduler(/*locality_fast_path=*/false);
  yarn::PendingAsk ask{ApplicationId{1, 1}, {1, 128}, 1,
                       yarn::InstanceType::kMrMapTask, false};
  ask.eligible_at = seconds(100);
  ask.preferred_nodes = {NodeId{3}};
  scheduler.enqueue(ask);
  cluster::Node preferred(NodeId{3}, cluster::kNodeCapacity);
  EXPECT_TRUE(scheduler.assign_on_heartbeat(preferred, 16, millis(20)).empty());
  EXPECT_EQ(scheduler.assign_on_heartbeat(preferred, 16, seconds(100)).size(),
            1u);
}

TEST(LocalityFastPath, EndToEndCutsAllocationDelay) {
  const auto alloc_median = [](bool fast_path) {
    harness::ScenarioConfig scenario;
    scenario.seed = 401;
    scenario.yarn.locality_fast_path = fast_path;
    for (int i = 0; i < 8; ++i) {
      harness::SparkSubmissionPlan plan;
      plan.at = seconds(1 + 8 * i);
      plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
      scenario.spark_jobs.push_back(std::move(plan));
    }
    const auto analysis =
        checker::SdChecker().analyze(harness::run_scenario(scenario).logs);
    return analysis.aggregate.alloc.median();
  };
  const double slow = alloc_median(false);
  const double fast = alloc_median(true);
  // A 2 GB dataset has 16 blocks; with 3-way replication most of the 25
  // nodes hold a replica, so nearly every container takes the fast path.
  EXPECT_LT(fast, slow * 0.5);
}

}  // namespace
}  // namespace sdc
