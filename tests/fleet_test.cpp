// Fleet mode: the pipelined multi-corpus pipeline must be an invisible
// optimization per corpus — each corpus's analysis_json byte-identical
// to a standalone analyze of the same directory — and the KS drift gate
// must flag genuinely shifted distributions while passing identical
// ones.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "sdchecker/compare.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/fleet.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

namespace sdc::checker {
namespace {

namespace fs = std::filesystem;

/// A corpus with a little corruption so diagnostics ordering is part of
/// the parity check too.
logging::LogBundle make_corpus(int jobs, std::uint64_t seed) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 4 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 1024, 2 + i % 3);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  logging::LogBundle logs = harness::run_scenario(scenario).logs;
  logs.append("rm.log", "no timestamp here: plain unparsable line");
  return logs;
}

/// Writes `count` distinct corpora under a fresh root; returns the root.
fs::path write_fleet_root(const std::string& name, int count) {
  const fs::path root = fs::temp_directory_path() / name;
  fs::remove_all(root);
  for (int i = 0; i < count; ++i) {
    const fs::path dir = root / ("corpus" + std::to_string(i));
    fs::create_directories(dir);
    make_corpus(2 + i, 100 + static_cast<std::uint64_t>(i))
        .write_to_directory(dir);
  }
  return root;
}

TEST(Fleet, PerCorpusJsonByteIdenticalToStandaloneAnalyze) {
  const fs::path root = write_fleet_root("sdc_fleet_parity", 3);
  FleetOptions options;
  options.threads = 4;
  options.shards_per_corpus = 3;
  const FleetResult fleet = analyze_fleet(root, options);
  ASSERT_EQ(fleet.corpora.size(), 3u);
  for (const CorpusResult& corpus : fleet.corpora) {
    ASSERT_TRUE(corpus.error.empty()) << corpus.name << ": " << corpus.error;
    const AnalysisResult standalone =
        SdChecker().analyze_directory(corpus.dir);
    EXPECT_EQ(corpus.analysis_json, analysis_json(standalone)) << corpus.name;
    EXPECT_EQ(corpus.apps, standalone.timelines.size());
    EXPECT_EQ(corpus.events, standalone.events_total);
    EXPECT_EQ(corpus.lines, standalone.lines_total);
    EXPECT_EQ(corpus.diagnostics, standalone.diagnostics.size());
  }
  fs::remove_all(root);
}

TEST(Fleet, ThreadAndShardCountsDoNotChangeBytes) {
  const fs::path root = write_fleet_root("sdc_fleet_shard_sweep", 2);
  FleetOptions serial;
  serial.threads = 1;
  serial.shards_per_corpus = 1;
  const FleetResult reference = analyze_fleet(root, serial);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{7}}) {
      FleetOptions options;
      options.threads = threads;
      options.shards_per_corpus = shards;
      const FleetResult fleet = analyze_fleet(root, options);
      ASSERT_EQ(fleet.corpora.size(), reference.corpora.size());
      for (std::size_t i = 0; i < fleet.corpora.size(); ++i) {
        EXPECT_EQ(fleet.corpora[i].analysis_json,
                  reference.corpora[i].analysis_json)
            << "threads=" << threads << " shards=" << shards
            << " corpus=" << fleet.corpora[i].name;
      }
    }
  }
  fs::remove_all(root);
}

TEST(Fleet, DiscoverCorporaSortedSubdirectoriesOnly) {
  const fs::path root = fs::temp_directory_path() / "sdc_fleet_discover";
  fs::remove_all(root);
  fs::create_directories(root / "banana");
  fs::create_directories(root / "apple");
  fs::create_directories(root / "cherry");
  std::ofstream(root / "stray.log") << "not a corpus\n";
  const std::vector<fs::path> corpora = discover_corpora(root);
  ASSERT_EQ(corpora.size(), 3u);
  EXPECT_EQ(corpora[0].filename(), "apple");
  EXPECT_EQ(corpora[1].filename(), "banana");
  EXPECT_EQ(corpora[2].filename(), "cherry");
  EXPECT_THROW(discover_corpora(root / "missing"), std::runtime_error);
  fs::remove_all(root);
}

TEST(Fleet, UnreadableCorpusBecomesErrorNotAbort) {
  const fs::path root = write_fleet_root("sdc_fleet_partial", 1);
  const std::vector<fs::path> corpora = {root / "corpus0",
                                         root / "does_not_exist"};
  const FleetResult fleet = analyze_fleet(corpora, FleetOptions{});
  ASSERT_EQ(fleet.corpora.size(), 2u);
  EXPECT_TRUE(fleet.corpora[0].error.empty());
  EXPECT_FALSE(fleet.corpora[1].error.empty());
  EXPECT_EQ(fleet.failed(), 1u);
  // The good corpus is still byte-correct.
  const AnalysisResult standalone =
      SdChecker().analyze_directory(fleet.corpora[0].dir);
  EXPECT_EQ(fleet.corpora[0].analysis_json, analysis_json(standalone));
  fs::remove_all(root);
}

TEST(Fleet, SummaryJsonRoundTripsAsBaseline) {
  const fs::path root = write_fleet_root("sdc_fleet_roundtrip", 2);
  const FleetResult fleet = analyze_fleet(root, FleetOptions{});
  const fs::path file = fs::temp_directory_path() / "sdc_fleet_baseline.json";
  {
    std::ofstream out(file);
    out << fleet.summary_json();
  }
  std::string error;
  const auto baseline = load_fleet_baseline(file, &error);
  ASSERT_TRUE(baseline.has_value()) << error;
  ASSERT_EQ(baseline->size(), fleet.components.size());
  for (std::size_t i = 0; i < baseline->size(); ++i) {
    EXPECT_EQ((*baseline)[i].metric, fleet.components[i].metric);
    EXPECT_EQ((*baseline)[i].count, fleet.components[i].count);
    EXPECT_EQ((*baseline)[i].buckets, fleet.components[i].buckets);
  }
  // A fleet gated against its own summary reports no drift.
  const DriftReport drift = histogram_drift(*baseline, fleet.components);
  EXPECT_TRUE(drift.regressions().empty());
  fs::remove(file);
  fs::remove_all(root);
}

TEST(Fleet, LoadBaselineRejectsMalformedInput) {
  const fs::path file = fs::temp_directory_path() / "sdc_fleet_bad.json";
  std::string error;
  EXPECT_FALSE(
      load_fleet_baseline(fs::path("/definitely/missing.json"), &error));
  EXPECT_FALSE(error.empty());
  {
    std::ofstream out(file);
    out << "{\"fleet\":{}}";
  }
  error.clear();
  EXPECT_FALSE(load_fleet_baseline(file, &error));
  EXPECT_NE(error.find("components"), std::string::npos);
  fs::remove(file);
}

TEST(Fleet, ShiftedBaselineTripsTheGate) {
  const fs::path root = write_fleet_root("sdc_fleet_drift", 2);
  const FleetResult fleet = analyze_fleet(root, FleetOptions{});
  // Seeded drift: same components, every observation pushed into the
  // overflow bucket — maximal distribution shift at a healthy n.
  std::vector<ComponentHistogram> drifted = fleet.components;
  for (ComponentHistogram& component : drifted) {
    component.count = 500;
    component.sum_ms = 500.0 * 1e6;
    std::fill(component.buckets.begin(), component.buckets.end(), 0u);
    component.buckets.back() = 500;
  }
  const DriftReport drift = histogram_drift(drifted, fleet.components);
  EXPECT_FALSE(drift.regressions().empty());
  // Worst offenders come first.
  const auto regressions = drift.regressions();
  for (std::size_t i = 1; i < regressions.size(); ++i) {
    EXPECT_GE(regressions[i - 1]->distance / regressions[i - 1]->threshold,
              regressions[i]->distance / regressions[i]->threshold);
  }
  fs::remove_all(root);
}

TEST(Drift, KsDistanceEndpoints) {
  EXPECT_DOUBLE_EQ(ks_distance({10, 0, 0}, {10, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ks_distance({10, 0, 0}, {0, 0, 10}), 1.0);
  EXPECT_DOUBLE_EQ(ks_distance({}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(ks_distance({0, 0}, {1, 2}), 0.0);
  // Half the mass moved one bucket over: D = 0.5 at the first edge.
  EXPECT_DOUBLE_EQ(ks_distance({10, 10}, {5, 15}), 0.25);
}

TEST(Drift, KsThresholdFloorsAndScales) {
  // Huge samples: the asymptotic bound shrinks below the floor.
  EXPECT_DOUBLE_EQ(ks_threshold(1000000, 1000000, 0.05), 0.05);
  // Small samples: 1.36*sqrt(18/81).
  EXPECT_NEAR(ks_threshold(9, 9), 1.36 * std::sqrt(18.0 / 81.0), 1e-12);
  // No evidence is never significant.
  EXPECT_TRUE(std::isinf(ks_threshold(0, 10)));
  EXPECT_TRUE(std::isinf(ks_threshold(10, 0)));
}

TEST(Drift, ComponentHistogramsMatchAggregateSampleCounts) {
  const fs::path root = write_fleet_root("sdc_fleet_hist", 1);
  const AnalysisResult analysis =
      SdChecker().analyze_directory(root / "corpus0");
  const std::vector<ComponentHistogram> components =
      component_histograms(analysis);
  const auto metrics = analysis.aggregate.metrics();
  ASSERT_EQ(components.size(), metrics.size());
  for (std::size_t i = 0; i < components.size(); ++i) {
    EXPECT_EQ(components[i].metric, metrics[i].first);
    EXPECT_EQ(components[i].count, metrics[i].second->size());
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : components[i].buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, components[i].count);
    EXPECT_EQ(components[i].buckets.size(),
              component_bucket_edges_ms().size() + 1);
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace sdc::checker
