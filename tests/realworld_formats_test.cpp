// Real-world log format variants the tool must accept beyond the
// simulator's own output: Hadoop 2.8+ epoch-bearing container ids and
// Spark's default second-precision log4j pattern.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "logging/log_view.hpp"
#include "sdchecker/extractor.hpp"
#include "sdchecker/parsed_line.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {
namespace {

// --- epoch-bearing container ids (container_eNN_...) -------------------------

TEST(RealWorld, EpochContainerIdParses) {
  const auto id =
      ContainerId::parse("container_e17_1499100000000_0005_01_000003");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->app.cluster_ts, 1'499'100'000'000);
  EXPECT_EQ(id->app.id, 5);
  EXPECT_EQ(id->attempt, 1);
  EXPECT_EQ(id->id, 3);
}

TEST(RealWorld, EpochAndPlainFormsIdentifySameContainer) {
  const auto plain = ContainerId::parse("container_1499100000000_0005_01_000003");
  const auto epoch = ContainerId::parse("container_e42_1499100000000_0005_01_000003");
  ASSERT_TRUE(plain && epoch);
  EXPECT_EQ(*plain, *epoch);
}

TEST(RealWorld, MalformedEpochRejected) {
  EXPECT_FALSE(ContainerId::parse("container_e_1_1_1_1").has_value());
  EXPECT_FALSE(ContainerId::parse("container_ex_1_1_1_1").has_value());
}

TEST(RealWorld, EpochIdDiscoveredInsideMessage) {
  const auto id = find_container_id(
      "Assigned container container_e17_1499100000000_0005_01_000002 of "
      "capacity <memory:4096>");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->id, 2);
}

// --- Spark default console pattern (yy/MM/dd HH:mm:ss, no millis) ------------

TEST(RealWorld, SparkShortTimestampParses) {
  const auto parsed = parse_line(
      "17/07/03 16:40:00 INFO CoarseGrainedExecutorBackend: Got assigned "
      "task 0");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch_ms, 1'499'100'000'000);  // second precision
  EXPECT_EQ(parsed->level, "INFO");
  EXPECT_EQ(parsed->logger, "CoarseGrainedExecutorBackend");
  EXPECT_EQ(parsed->message, "Got assigned task 0");
}

TEST(RealWorld, SparkShortFormatRejectsGarbage) {
  EXPECT_FALSE(parse_line("17/13/03 16:40:00 INFO X: y").has_value());
  EXPECT_FALSE(parse_line("17/07/03 26:40:00 INFO X: y").has_value());
  EXPECT_FALSE(parse_line("17/07/03 16:40 INFO X: y").has_value());
}

TEST(RealWorld, ShortFormatExecutorStreamMinesEndToEnd) {
  // A realistic Spark-2.2 executor stdout captured with default log4j:
  // short class names, second-precision stamps.
  logging::LogBundle bundle;
  bundle.append("stderr",
                "17/07/03 16:40:07 INFO CoarseGrainedExecutorBackend: Started "
                "daemon with process name: 3119@node07");
  bundle.append("stderr",
                "17/07/03 16:40:07 INFO SecurityManager: Changing view acls "
                "to: yarn,spark");
  bundle.append("stderr",
                "17/07/03 16:40:08 INFO CoarseGrainedExecutorBackend: "
                "Connecting to driver for container "
                "container_e17_1499100000000_0001_01_000002");
  bundle.append("stderr",
                "17/07/03 16:40:12 INFO CoarseGrainedExecutorBackend: Got "
                "assigned task 0");
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_EQ(result.lines_unparsed, 0u);
  ASSERT_EQ(result.timelines.size(), 1u);
  const AppTimeline& timeline = result.timelines.begin()->second;
  ASSERT_EQ(timeline.containers.size(), 1u);
  const ContainerTimeline& container = timeline.containers.begin()->second;
  EXPECT_EQ(container.ts(EventKind::kExecutorFirstLog), 1'499'100'007'000);
  EXPECT_EQ(container.ts(EventKind::kExecutorFirstTask), 1'499'100'012'000);
}

TEST(RealWorld, MixedFormatsInOneBundle) {
  logging::LogBundle bundle;
  bundle.append("rm.log",
                "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
                "resourcemanager.rmapp.RMAppImpl: "
                "application_1499100000000_0001 State change from NEW_SAVING "
                "to SUBMITTED on event = APP_NEW_SAVED");
  bundle.append("executor.log",
                "17/07/03 16:40:09 INFO CoarseGrainedExecutorBackend: Got "
                "assigned task 0");
  const AnalysisResult result = SdChecker().analyze(bundle);
  EXPECT_EQ(result.lines_unparsed, 0u);
  EXPECT_EQ(result.events_total, 3u);  // SUBMITTED + FIRST_LOG + FIRST_TASK
}

// --- CRLF-terminated logs (files collected via Windows gateways) -------------

TEST(RealWorld, CrlfCorpusParsesCleanly) {
  const auto dir = std::filesystem::temp_directory_path() / "sdc_crlf_corpus";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir / "rm.log", std::ios::binary);
    out << "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
           "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0001 "
           "State change from NEW_SAVING to SUBMITTED on event = "
           "APP_NEW_SAVED\r\n";
    out << "2017-07-03 16:40:00,456 INFO  org.apache.hadoop.yarn.server."
           "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0001 "
           "State change from SUBMITTED to ACCEPTED on event = "
           "APP_ACCEPTED\r\n";
  }
  {
    std::ofstream out(dir / "executor.log", std::ios::binary);
    out << "17/07/03 16:40:09 INFO CoarseGrainedExecutorBackend: Connecting "
           "to driver for container container_1499100000000_0001_01_000002"
           "\r\n";
    out << "17/07/03 16:40:12 INFO CoarseGrainedExecutorBackend: Got "
           "assigned task 0\r\n";
  }

  // getline-based bundle read strips the '\r'.
  const logging::LogBundle bundle = logging::LogBundle::read_from_directory(dir);
  for (const std::string& line : bundle.lines("rm.log")) {
    EXPECT_TRUE(line.empty() || line.back() != '\r');
  }
  const AnalysisResult via_bundle = SdChecker().analyze(bundle);
  EXPECT_EQ(via_bundle.lines_total, 4u);
  EXPECT_EQ(via_bundle.lines_unparsed, 0u);

  // The mmap-backed view path strips it too and mines identically.
  const AnalysisResult via_view = SdChecker().analyze_directory(dir);
  EXPECT_EQ(via_view.lines_unparsed, 0u);
  EXPECT_EQ(via_view.events_total, via_bundle.events_total);
  ASSERT_EQ(via_view.timelines.size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sdc::checker
