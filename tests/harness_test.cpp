// Tests for the scenario harness itself: completion detection, time caps,
// skew plumbing, ground-truth bookkeeping.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "logging/timestamp.hpp"
#include "workloads/tpch.hpp"

namespace sdc::harness {
namespace {

ScenarioConfig one_job(std::uint64_t seed = 71) {
  ScenarioConfig scenario;
  scenario.seed = seed;
  SparkSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app = workloads::make_tpch_query(1, 1024, 2);
  scenario.spark_jobs.push_back(std::move(plan));
  return scenario;
}

TEST(Harness, EmptyScenarioTerminates) {
  ScenarioConfig scenario;
  scenario.seed = 1;
  const ScenarioResult result = run_scenario(scenario);
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_FALSE(result.hit_time_cap);
  // RM log exists even with no jobs? No submissions -> no log lines.
  EXPECT_EQ(result.logs.total_lines(), 0u);
}

TEST(Harness, HitTimeCapReportedWhenJobsCannotFinish) {
  ScenarioConfig scenario = one_job();
  // An absurdly small horizon: the job cannot finish.
  scenario.extra_horizon = seconds(2);
  const ScenarioResult result = run_scenario(scenario);
  EXPECT_TRUE(result.hit_time_cap);
  EXPECT_TRUE(result.jobs.empty());
}

TEST(Harness, GroundTruthFieldsFilled) {
  const ScenarioResult result = run_scenario(one_job());
  ASSERT_EQ(result.jobs.size(), 1u);
  const spark::JobRecord& job = result.jobs[0];
  EXPECT_EQ(job.submitted_at, seconds(1));
  EXPECT_GT(job.first_task_at, 0);
  EXPECT_GT(job.finished_at, job.first_task_at);
  EXPECT_EQ(job.executors_requested, 2);
  EXPECT_EQ(job.executors_launched, 2);
  EXPECT_GT(result.containers_allocated, 0);
  EXPECT_GT(result.events_executed, 100u);
}

TEST(Harness, JobsSortedByApplicationId) {
  ScenarioConfig scenario;
  scenario.seed = 72;
  // Second submission finishes first (tiny job, earlier completion is
  // possible); output must still be app-id ordered.
  for (int i = 0; i < 4; ++i) {
    SparkSubmissionPlan plan;
    plan.at = seconds(1 + i);
    plan.app = workloads::make_tpch_query(1 + i, 512, 2);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const ScenarioResult result = run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 4u);
  for (std::size_t i = 1; i < result.jobs.size(); ++i) {
    EXPECT_LT(result.jobs[i - 1].app, result.jobs[i].app);
  }
}

TEST(Harness, NmClockSkewAppliesPerNodeIndex) {
  ScenarioConfig scenario = one_job(73);
  scenario.nm_clock_skew_ms.assign(25, 5000);  // every NM 5 s fast
  const ScenarioResult skewed = run_scenario(scenario);
  const ScenarioResult normal = run_scenario(one_job(73));
  // Find one NM line present in both runs and compare stamps.
  for (const auto& name : normal.logs.stream_names()) {
    if (name.rfind("nm-", 0) != 0) continue;
    const auto& normal_lines = normal.logs.lines(name);
    const auto& skewed_lines = skewed.logs.lines(name);
    if (normal_lines.empty()) continue;
    ASSERT_EQ(normal_lines.size(), skewed_lines.size());
    const auto t_normal = logging::parse_epoch_ms(normal_lines[0].substr(0, 23));
    const auto t_skewed = logging::parse_epoch_ms(skewed_lines[0].substr(0, 23));
    ASSERT_TRUE(t_normal && t_skewed);
    EXPECT_EQ(*t_skewed - *t_normal, 5000);
    return;  // one stream is enough
  }
  FAIL() << "no NM stream found";
}

TEST(Harness, EventCountsIdenticalAcrossRepeatedRuns) {
  const ScenarioResult a = run_scenario(one_job(74));
  const ScenarioResult b = run_scenario(one_job(74));
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.containers_allocated, b.containers_allocated);
}

}  // namespace
}  // namespace sdc::harness
