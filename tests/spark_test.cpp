// Tests for the Spark framework layer: cost models and driver/executor
// lifecycle through small simulations.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "harness/scenario.hpp"
#include "spark/cost_model.hpp"
#include "workloads/tpch.hpp"

namespace sdc::spark {
namespace {

// --- cost model --------------------------------------------------------------

TEST(SparkCostModel, DriverInitNearPaperAnchor) {
  // Idle-cluster median is 2.5 s; under the production trace's ambient
  // scan I/O it lands at the paper's ~3 s (both workloads, Fig. 11-a).
  SparkCostModel model;
  cluster::InterferenceModel idle;
  Rng rng(1);
  SampleSet samples;
  for (int i = 0; i < 4000; ++i) {
    samples.add(to_seconds(model.driver_init(idle, rng)));
  }
  EXPECT_NEAR(samples.median(), 2.5, 0.3);
}

TEST(SparkCostModel, UserInitScalesWithOpenedFiles) {
  SparkCostModel model;
  cluster::InterferenceModel idle;
  Rng rng(2);
  SampleSet one;
  SampleSet eight;
  SampleSet sixteen;
  for (int i = 0; i < 1500; ++i) {
    one.add(to_seconds(model.user_init(1, false, idle, rng)));
    eight.add(to_seconds(model.user_init(8, false, idle, rng)));
    sixteen.add(to_seconds(model.user_init(16, false, idle, rng)));
  }
  EXPECT_GT(eight.median(), one.median() * 5);
  EXPECT_GT(sixteen.median(), eight.median() * 1.7);
  EXPECT_NEAR(eight.median(), 8 * one.median(), 8 * one.median() * 0.25);
}

TEST(SparkCostModel, ParallelInitBeatsSerialForManyFiles) {
  // The paper's Scala-Futures optimization: ~2 s tail reduction on the
  // 8-table TPC-H init (Fig. 11-b "opt" vs "x1").
  SparkCostModel model;
  cluster::InterferenceModel idle;
  Rng rng(3);
  SampleSet serial;
  SampleSet parallel;
  for (int i = 0; i < 2000; ++i) {
    serial.add(to_seconds(model.user_init(8, false, idle, rng)));
    parallel.add(to_seconds(model.user_init(8, true, idle, rng)));
  }
  EXPECT_LT(parallel.median(), serial.median() - 2.0);
  EXPECT_LT(parallel.p95(), serial.p95() - 2.0);
}

TEST(SparkCostModel, ZeroFilesInitIsFree) {
  SparkCostModel model;
  cluster::InterferenceModel idle;
  Rng rng(4);
  EXPECT_EQ(model.user_init(0, false, idle, rng), 0);
  EXPECT_EQ(model.user_init(0, true, idle, rng), 0);
}

TEST(SparkCostModel, CpuInterferenceStretchesInAppPhases) {
  SparkCostModel model;
  cluster::InterferenceModel loaded;
  loaded.add_cpu_units(16);
  cluster::InterferenceModel idle;
  Rng rng_a(5);
  Rng rng_b(5);
  const double idle_init = to_seconds(model.driver_init(idle, rng_a));
  const double loaded_init = to_seconds(model.driver_init(loaded, rng_b));
  EXPECT_NEAR(loaded_init / idle_init, loaded.cpu_multiplier(), 0.01);
}

TEST(SparkCostModel, IoInterferenceHitsRegistrationHardest) {
  // executor_register couples fully to io-control; driver init only ~0.3.
  SparkCostModel model;
  cluster::InterferenceModel io;
  io.add_io_units(100);
  cluster::InterferenceModel idle;
  Rng r1(6);
  Rng r2(6);
  Rng r3(6);
  Rng r4(6);
  const double reg_ratio =
      to_seconds(model.executor_registration(io, r1)) /
      to_seconds(model.executor_registration(idle, r2));
  const double drv_ratio = to_seconds(model.driver_init(io, r3)) /
                           to_seconds(model.driver_init(idle, r4));
  EXPECT_GT(reg_ratio, drv_ratio);
}

// --- driver/executor lifecycle through the harness ------------------------------

harness::ScenarioResult run_single(spark::SparkAppConfig app,
                                   yarn::SchedulerKind scheduler =
                                       yarn::SchedulerKind::kCapacity) {
  harness::ScenarioConfig scenario;
  scenario.seed = 11;
  scenario.yarn.scheduler = scheduler;
  harness::SparkSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app = std::move(app);
  scenario.spark_jobs.push_back(std::move(plan));
  return harness::run_scenario(scenario);
}

TEST(SparkLifecycle, CompletesAndReportsGroundTruth) {
  auto result = run_single(workloads::make_tpch_query(3, 2048, 4));
  ASSERT_EQ(result.jobs.size(), 1u);
  const JobRecord& job = result.jobs[0];
  EXPECT_EQ(job.kind, AppKind::kSparkSql);
  EXPECT_EQ(job.executors_requested, 4);
  EXPECT_EQ(job.executors_launched, 4);
  EXPECT_EQ(job.submitted_at, seconds(1));
  EXPECT_GT(job.first_task_at, job.submitted_at);
  EXPECT_GT(job.finished_at, job.first_task_at);
  EXPECT_FALSE(result.hit_time_cap);
}

TEST(SparkLifecycle, EmitsAllTableOneMessages) {
  auto result = run_single(workloads::make_tpch_query(1, 1024, 2));
  // Driver log stream.
  bool register_seen = false;
  bool start_allo = false;
  bool end_allo = false;
  std::size_t got_assigned = 0;
  for (const auto& name : result.logs.stream_names()) {
    for (const auto& line : result.logs.lines(name)) {
      if (line.find("Registering the ApplicationMaster") != std::string::npos)
        register_seen = true;
      if (line.find("START_ALLO") != std::string::npos) start_allo = true;
      if (line.find("END_ALLO") != std::string::npos) end_allo = true;
      if (line.find("Got assigned task") != std::string::npos) ++got_assigned;
    }
  }
  EXPECT_TRUE(register_seen);
  EXPECT_TRUE(start_allo);
  EXPECT_TRUE(end_allo);
  // One task per executor per stage (tpch-q1 runs 3 stages).
  EXPECT_EQ(got_assigned, 2u * 3u);
}

TEST(SparkLifecycle, DriverAndExecutorStreamsExist) {
  auto result = run_single(workloads::make_tpch_query(2, 1024, 3));
  std::size_t driver_streams = 0;
  std::size_t executor_streams = 0;
  for (const auto& name : result.logs.stream_names()) {
    if (name.rfind("driver-", 0) == 0) ++driver_streams;
    if (name.rfind("executor-", 0) == 0) ++executor_streams;
  }
  EXPECT_EQ(driver_streams, 1u);
  EXPECT_EQ(executor_streams, 3u);
}

TEST(SparkLifecycle, OverRequestLaunchesOnlyConfiguredExecutors) {
  spark::SparkAppConfig app = workloads::make_tpch_query(1, 1024, 4);
  app.over_request_factor = 1.5;  // asks 6, launches 4
  auto result = run_single(std::move(app), yarn::SchedulerKind::kOpportunistic);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].executors_launched, 4);
  std::size_t released = 0;
  for (const auto& line : result.logs.lines("rm.log")) {
    if (line.find("to RELEASED") != std::string::npos) ++released;
  }
  EXPECT_EQ(released, 2u);
}

TEST(SparkLifecycle, WordcountOpensOneFileAndFinishesFaster) {
  // Same shape, different user-init cost: SQL > wordcount in executor
  // delay terms (Fig. 11-a); here we just check the structural knobs.
  const auto sql = workloads::make_tpch_query(1, 2048, 4);
  const auto wc = workloads::make_spark_wordcount(2048, 4);
  EXPECT_EQ(sql.files_opened, 8);
  EXPECT_EQ(wc.files_opened, 1);
  EXPECT_EQ(wc.kind, AppKind::kWordCount);
}

TEST(SparkLifecycle, DeterministicForFixedSeed) {
  const auto run = [] {
    auto result = run_single(workloads::make_tpch_query(5, 2048, 4));
    return std::make_tuple(result.jobs.at(0).first_task_at,
                           result.jobs.at(0).finished_at,
                           result.logs.total_lines(),
                           result.events_executed);
  };
  EXPECT_EQ(run(), run());
}

TEST(SparkLifecycle, AppKindNames) {
  EXPECT_EQ(app_kind_name(AppKind::kSparkSql), "spark-sql");
  EXPECT_EQ(app_kind_name(AppKind::kWordCount), "wordcount");
  EXPECT_EQ(app_kind_name(AppKind::kKmeans), "kmeans");
  EXPECT_EQ(app_kind_name(AppKind::kMapReduce), "mapreduce");
}

}  // namespace
}  // namespace sdc::spark
