// Tests for the Sparrow-style sampling variant of the distributed
// scheduler: power-of-d probing picks shorter queues, and end-to-end it
// shrinks the Fig. 7-b queuing tail versus pure random placement.
#include <gtest/gtest.h>

#include <set>

#include "cluster/node.hpp"
#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/generators.hpp"
#include "workloads/tpch.hpp"
#include "yarn/scheduler.hpp"

namespace sdc::yarn {
namespace {

const ApplicationId kApp{1'499'100'000'000, 1};

TEST(SamplingScheduler, ProbesPreferShorterQueues) {
  OpportunisticScheduler scheduler{Rng(5), /*probe_width=*/3};
  // Two nodes: one with a deep opportunistic queue, one idle.
  cluster::Node busy(NodeId{1}, cluster::kNodeCapacity);
  cluster::Node idle(NodeId{2}, cluster::kNodeCapacity);
  for (int i = 0; i < 10; ++i) busy.enqueue_opportunistic();
  std::vector<cluster::Node*> nodes{&busy, &idle};
  PendingAsk ask{kApp, {8, 4096}, 40, InstanceType::kSparkExecutor, false};
  const auto grants = scheduler.assign_immediate(ask, nodes);
  ASSERT_EQ(grants.size(), 40u);
  std::size_t on_idle = 0;
  for (const Grant& grant : grants) {
    if (grant.node == idle.id()) ++on_idle;
  }
  // With 3 probes over 2 nodes, the idle node is chosen whenever it is
  // probed at least once: P = 1 - (1/2)^3 = 87.5%.
  EXPECT_GT(on_idle, 30u);
}

TEST(SamplingScheduler, WidthOneEqualsPureRandom) {
  // probe_width=1 must behave exactly like the plain opportunistic
  // scheduler given the same RNG stream.
  OpportunisticScheduler random{Rng(9), 1};
  OpportunisticScheduler sampling{Rng(9), 1};
  std::vector<cluster::Node> storage;
  storage.reserve(8);
  for (int i = 0; i < 8; ++i) {
    storage.emplace_back(NodeId{i + 1}, cluster::kNodeCapacity);
  }
  std::vector<cluster::Node*> nodes;
  for (auto& node : storage) nodes.push_back(&node);
  PendingAsk ask{kApp, {1, 128}, 20, InstanceType::kSparkExecutor, false};
  const auto a = random.assign_immediate(ask, nodes);
  const auto b = sampling.assign_immediate(ask, nodes);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
  }
}

TEST(SamplingScheduler, ProbeWidthClampedToOne) {
  OpportunisticScheduler scheduler{Rng(1), -3};
  EXPECT_EQ(scheduler.probe_width(), 1);
}

TEST(SamplingScheduler, EndToEndShrinksQueuingTailUnderLoad) {
  const auto queuing_p95 = [](SchedulerKind kind) {
    harness::ScenarioConfig scenario;
    scenario.seed = 91;
    scenario.yarn.scheduler = kind;
    scenario.yarn.sampling_probe_width = 2;
    scenario.extra_horizon = seconds(8 * 3600);
    harness::MrSubmissionPlan load;
    load.at = 0;
    load.app =
        workloads::make_mr_wordcount_for_load(0.93, 25 * 32, seconds(70));
    scenario.mr_jobs.push_back(std::move(load));
    for (int i = 0; i < 8; ++i) {
      harness::SparkSubmissionPlan victim;
      victim.at = seconds(20 + 6 * i);
      victim.app = workloads::make_tpch_query(1 + i, 2048, 4);
      victim.app.name = "victim-" + victim.app.name;
      scenario.spark_jobs.push_back(std::move(victim));
    }
    const auto sim = harness::run_scenario(scenario);
    const auto analysis = checker::SdChecker().analyze(sim.logs);
    SampleSet queuing;
    for (const auto& job : sim.jobs) {
      if (job.name.rfind("victim-", 0) != 0) continue;
      const auto it = analysis.delays.find(job.app);
      if (it == analysis.delays.end()) continue;
      for (const std::int64_t q : it->second.worker_queuings()) {
        queuing.add(static_cast<double>(q) / 1000.0);
      }
    }
    return queuing.empty() ? 0.0 : queuing.p95();
  };
  const double random_tail = queuing_p95(SchedulerKind::kOpportunistic);
  const double sampling_tail = queuing_p95(SchedulerKind::kSampling);
  EXPECT_GT(random_tail, 5.0);  // the Fig. 7-b pathology is present
  // Probing mitigates the tail.  It cannot eliminate it: when every node
  // is near-full the wait for resources to free dominates and placement
  // only decides how many containers stack behind the same node.
  EXPECT_LT(sampling_tail, random_tail * 0.85);
}

TEST(SamplingScheduler, IdleClusterBehavesLikeOpportunistic) {
  harness::ScenarioConfig scenario;
  scenario.seed = 92;
  scenario.yarn.scheduler = SchedulerKind::kSampling;
  harness::SparkSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app = workloads::make_tpch_query(1, 2048, 4);
  scenario.spark_jobs.push_back(std::move(plan));
  const auto sim = harness::run_scenario(scenario);
  ASSERT_EQ(sim.jobs.size(), 1u);
  const auto analysis = checker::SdChecker().analyze(sim.logs);
  const auto& delays = analysis.delays.begin()->second;
  ASSERT_TRUE(delays.alloc.has_value());
  EXPECT_LT(*delays.alloc, 400);  // still the fast distributed path
}

}  // namespace
}  // namespace sdc::yarn
