// End-to-end integration tests: simulate -> (optionally write/read log
// files) -> mine with SDchecker -> check decompositions against the
// simulator's ground truth and the paper's structural invariants.
#include <gtest/gtest.h>

#include <filesystem>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "trace/submission_trace.hpp"
#include "workloads/generators.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

harness::ScenarioConfig small_trace_scenario(std::int32_t jobs,
                                             std::uint64_t seed = 42) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  trace::TraceConfig trace_config;
  trace_config.count = jobs;
  trace_config.mean_interarrival = seconds(5);
  trace_config.seed = seed;
  for (const auto& submission : trace::generate_trace(trace_config)) {
    harness::SparkSubmissionPlan plan;
    plan.at = submission.at;
    plan.app = workloads::make_tpch_query(
        1 + submission.workload_index % workloads::kTpchQueryCount, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return scenario;
}

TEST(Integration, SdcheckerMatchesGroundTruthTotals) {
  const auto result = harness::run_scenario(small_trace_scenario(12));
  ASSERT_EQ(result.jobs.size(), 12u);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  ASSERT_EQ(analysis.delays.size(), 12u);

  for (const spark::JobRecord& job : result.jobs) {
    const auto it = analysis.delays.find(job.app);
    ASSERT_NE(it, analysis.delays.end()) << job.app.str();
    const checker::Delays& delays = it->second;
    ASSERT_TRUE(delays.total.has_value());
    // Ground truth at microsecond precision vs logs at millisecond
    // precision: agreement within 2 ms (one rounding on each endpoint)
    // plus 1 ms for the RPC between the driver's submit call and the RM's
    // SUBMITTED transition is not guaranteed; allow the RM-side admission
    // latency (~10 ms) as slack.
    const double truth_ms =
        static_cast<double>(job.first_task_at - job.submitted_at) / 1000.0;
    EXPECT_NEAR(static_cast<double>(*delays.total), truth_ms, 30.0)
        << job.app.str();
  }
}

TEST(Integration, StructuralInvariantsHoldForEveryApp) {
  const auto result = harness::run_scenario(small_trace_scenario(15, 7));
  const auto analysis = checker::SdChecker().analyze(result.logs);
  for (const auto& [app, delays] : analysis.delays) {
    ASSERT_TRUE(delays.total && delays.am && delays.cf && delays.cl &&
                delays.driver && delays.executor && delays.in_app &&
                delays.out_app && delays.alloc)
        << app.str();
    EXPECT_GE(*delays.am, 0);
    EXPECT_GE(*delays.driver, 0);
    EXPECT_GE(*delays.executor, 0);
    EXPECT_LE(*delays.am, *delays.total);
    EXPECT_LE(*delays.cf, *delays.cl);
    EXPECT_LE(*delays.cl, *delays.total);
    EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
    // Driver delay is inside the AM delay window.
    EXPECT_LE(*delays.driver, *delays.am);
    // 4 executors worth of per-container samples.
    EXPECT_EQ(delays.worker_localizations().size(), 4u);
    EXPECT_EQ(delays.worker_launchings().size(), 4u);
    for (const std::int64_t acquisition : delays.worker_acquisitions()) {
      EXPECT_GE(acquisition, 0);
      EXPECT_LE(acquisition, 1100);  // heartbeat cap + slack (Fig. 7-c)
    }
  }
}

TEST(Integration, SchedulingGraphsValidateClean) {
  const auto result = harness::run_scenario(small_trace_scenario(8, 3));
  const auto analysis = checker::SdChecker().analyze(result.logs);
  for (const auto& [app, timeline] : analysis.timelines) {
    const auto graph = analysis.graph_for(app);
    EXPECT_TRUE(graph.validate().empty()) << app.str();
  }
  EXPECT_TRUE(analysis.anomalies.empty());
}

TEST(Integration, DirectoryRoundTripGivesSameAnalysis) {
  const auto result = harness::run_scenario(small_trace_scenario(5, 9));
  const auto dir =
      std::filesystem::temp_directory_path() / "sdc-integration-roundtrip";
  std::filesystem::remove_all(dir);
  result.logs.write_to_directory(dir);

  const auto from_memory = checker::SdChecker().analyze(result.logs);
  const auto from_disk = checker::SdChecker().analyze_directory(dir);
  ASSERT_EQ(from_memory.delays.size(), from_disk.delays.size());
  for (const auto& [app, mem_delays] : from_memory.delays) {
    const auto& disk_delays = from_disk.delays.at(app);
    EXPECT_EQ(mem_delays.total, disk_delays.total);
    EXPECT_EQ(mem_delays.driver, disk_delays.driver);
    EXPECT_EQ(mem_delays.executor, disk_delays.executor);
    EXPECT_EQ(mem_delays.alloc, disk_delays.alloc);
  }
  EXPECT_EQ(from_memory.lines_total, from_disk.lines_total);
  std::filesystem::remove_all(dir);
}

TEST(Integration, ParallelAnalysisMatchesSerial) {
  const auto result = harness::run_scenario(small_trace_scenario(6, 13));
  const auto serial = checker::SdChecker({.threads = 1}).analyze(result.logs);
  const auto parallel = checker::SdChecker({.threads = 4}).analyze(result.logs);
  ASSERT_EQ(serial.delays.size(), parallel.delays.size());
  for (const auto& [app, s] : serial.delays) {
    const auto& p = parallel.delays.at(app);
    EXPECT_EQ(s.total, p.total);
    EXPECT_EQ(s.in_app, p.in_app);
  }
}

TEST(Integration, BugDetectionEndToEnd) {
  // §V-A: over-requesting Spark on the opportunistic scheduler leaves
  // allocated-but-never-used containers that SDchecker must flag.
  harness::ScenarioConfig scenario;
  scenario.seed = 17;
  scenario.yarn.scheduler = yarn::SchedulerKind::kOpportunistic;
  for (int i = 0; i < 4; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 8 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    plan.app.over_request_factor = 1.5;  // asks 6, uses 4
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  const auto findings =
      analysis.anomalies_of(checker::AnomalyType::kNeverUsedContainer);
  EXPECT_EQ(findings.size(), 8u);  // 2 surplus containers x 4 apps
}

TEST(Integration, ClockSkewSurfacesAsNegativeIntervalsNotCrashes) {
  harness::ScenarioConfig scenario = small_trace_scenario(4, 21);
  // Skew every NM clock 2 s into the past: localization intervals stay
  // internally consistent (same clock) but RM->NM edges go backwards.
  scenario.nm_clock_skew_ms.assign(25, -2000);
  const auto result = harness::run_scenario(scenario);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  ASSERT_EQ(analysis.delays.size(), 4u);
  // Per-container NM-internal delays remain sane.
  for (const auto& [app, delays] : analysis.delays) {
    for (const std::int64_t loc : delays.worker_localizations()) {
      EXPECT_GE(loc, 0);
    }
  }
  // The graphs are no longer temporally consistent.
  std::size_t violating_apps = 0;
  for (const auto& [app, timeline] : analysis.timelines) {
    if (!analysis.graph_for(app).validate().empty()) ++violating_apps;
  }
  EXPECT_EQ(violating_apps, analysis.timelines.size());
}

TEST(Integration, InterferenceAppsDoNotBreakVictimAnalysis) {
  harness::ScenarioConfig scenario;
  scenario.seed = 23;
  {
    harness::MrSubmissionPlan dfsio;
    dfsio.at = 0;
    dfsio.app = workloads::make_dfsio(30, seconds(90));
    scenario.mr_jobs.push_back(std::move(dfsio));
  }
  for (int i = 0; i < 3; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(20 + 10 * i);
    plan.app = workloads::make_tpch_query(2 + i, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  // 4 applications total (dfsIO MR app + 3 queries).
  EXPECT_EQ(analysis.timelines.size(), 4u);
  std::size_t sql_apps_with_full_decomposition = 0;
  for (const auto& [app, delays] : analysis.delays) {
    if (delays.driver && delays.executor && delays.total) {
      ++sql_apps_with_full_decomposition;
    }
  }
  EXPECT_GE(sql_apps_with_full_decomposition, 3u);
}

TEST(Integration, AggregateReportRendersAllMetrics) {
  const auto result = harness::run_scenario(small_trace_scenario(6, 31));
  const auto analysis = checker::SdChecker().analyze(result.logs);
  const std::string text = analysis.aggregate.render_text();
  for (const char* metric :
       {"total", "am", "driver", "executor", "in-app", "out-app", "alloc",
        "acquisition", "localization", "queuing", "launching"}) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric;
  }
  const std::string csv = analysis.aggregate.render_csv();
  EXPECT_NE(csv.find("metric,n,median_s"), std::string::npos);
  EXPECT_NE(csv.find("total,6,"), std::string::npos);
}

}  // namespace
}  // namespace sdc
