// Tests for SDchecker's mining / grouping / decomposition pipeline on a
// hand-crafted log bundle with exactly known timestamps, so every
// decomposed delay can be asserted to the millisecond.
#include <gtest/gtest.h>

#include <string>

#include "logging/log_bundle.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/decompose.hpp"
#include "sdchecker/graph.hpp"
#include "sdchecker/grouping.hpp"
#include "sdchecker/miner.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {
namespace {

constexpr std::int64_t kEpoch = 1'499'100'000'000;

std::string line(std::int64_t offset_ms, const std::string& cls,
                 const std::string& message) {
  return logging::format_epoch_ms(kEpoch + offset_ms) + " INFO  " + cls + ": " +
         message;
}

const std::string kRmApp =
    "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
const std::string kRmContainer =
    "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl";
const std::string kNmContainer =
    "org.apache.hadoop.yarn.server.nodemanager.containermanager.container."
    "ContainerImpl";
const std::string kAm = "org.apache.spark.deploy.yarn.ApplicationMaster";
const std::string kAllocator = "org.apache.spark.deploy.yarn.YarnAllocator";
const std::string kBackend =
    "org.apache.spark.executor.CoarseGrainedExecutorBackend";

const std::string kApp = "application_1499100000000_0001";
const std::string kAmCid = "container_1499100000000_0001_01_000001";
const std::string kExec1 = "container_1499100000000_0001_01_000002";
const std::string kExec2 = "container_1499100000000_0001_01_000003";

/// Builds a complete single-app bundle:
///   t=0      SUBMITTED            t=100    ACCEPTED
///   AM:      alloc 150, acquired 170, localizing 200, scheduled 700,
///            running 780, driver first log 1500
///   driver:  register 4500 (-> APT_REGISTERED 4510),
///            START_ALLO 4600, END_ALLO 6600
///   exec1:   alloc 5200, acq 5800, localizing 5900, sched 6500, run 6580,
///            first log 7300, first task 11300
///   exec2:   alloc 5300, acq 6300, localizing 6400, sched 7100, run 7200,
///            first log 8000, first task 11450
logging::LogBundle make_golden_bundle() {
  logging::LogBundle bundle;
  const auto rm = [&](std::int64_t t, const std::string& msg) {
    bundle.append("rm.log", line(t, kRmApp, msg));
  };
  const auto rmc = [&](std::int64_t t, const std::string& cid,
                       const std::string& from, const std::string& to) {
    bundle.append("rm.log", line(t, kRmContainer,
                                 cid + " Container Transitioned from " + from +
                                     " to " + to));
  };
  const auto nm = [&](std::int64_t t, const std::string& cid,
                      const std::string& from, const std::string& to) {
    bundle.append("nm-node01.cluster.log",
                  line(t, kNmContainer, "Container " + cid +
                                            " transitioned from " + from +
                                            " to " + to));
  };

  rm(0, kApp + " State change from NEW_SAVING to SUBMITTED on event = "
              "APP_NEW_SAVED");
  rm(100, kApp + " State change from SUBMITTED to ACCEPTED on event = "
                "APP_ACCEPTED");
  rmc(150, kAmCid, "NEW", "ALLOCATED");
  rmc(170, kAmCid, "ALLOCATED", "ACQUIRED");
  nm(200, kAmCid, "NEW", "LOCALIZING");
  nm(700, kAmCid, "LOCALIZING", "SCHEDULED");
  nm(780, kAmCid, "SCHEDULED", "RUNNING");

  bundle.append("driver.log",
                line(1500, kAm, "Registered signal handlers for [TERM]"));
  bundle.append("driver.log",
                line(1500, kAm,
                     "ApplicationAttemptId: appattempt_1499100000000_0001_"
                     "000001"));
  bundle.append("driver.log",
                line(4500, kAm,
                     "Registering the ApplicationMaster with the "
                     "ResourceManager"));
  rm(4510, kApp + " State change from ACCEPTED to RUNNING on event = "
                 "ATTEMPT_REGISTERED");
  bundle.append("driver.log",
                line(4600, kAllocator,
                     "SDC START_ALLO requesting 2 executor containers"));

  rmc(5200, kExec1, "NEW", "ALLOCATED");
  rmc(5300, kExec2, "NEW", "ALLOCATED");
  rmc(5800, kExec1, "ALLOCATED", "ACQUIRED");
  nm(5900, kExec1, "NEW", "LOCALIZING");
  rmc(6300, kExec2, "ALLOCATED", "ACQUIRED");
  nm(6400, kExec2, "NEW", "LOCALIZING");
  nm(6500, kExec1, "LOCALIZING", "SCHEDULED");
  nm(6580, kExec1, "SCHEDULED", "RUNNING");
  bundle.append("driver.log",
                line(6600, kAllocator,
                     "SDC END_ALLO all 2 requested containers allocated"));
  nm(7100, kExec2, "LOCALIZING", "SCHEDULED");
  nm(7200, kExec2, "SCHEDULED", "RUNNING");

  bundle.append("exec1.log",
                line(7300, kBackend, "Started daemon with process name: 1@x"));
  bundle.append("exec1.log",
                line(7300, kBackend, "Connecting to driver for container " +
                                         kExec1));
  bundle.append("exec2.log",
                line(8000, kBackend, "Started daemon with process name: 2@y"));
  bundle.append("exec2.log",
                line(8000, kBackend, "Connecting to driver for container " +
                                         kExec2));
  bundle.append("exec1.log", line(11300, kBackend, "Got assigned task 0"));
  bundle.append("exec2.log", line(11450, kBackend, "Got assigned task 1"));
  // Second task on exec1 — must NOT move FIRST_TASK.
  bundle.append("exec1.log", line(15000, kBackend, "Got assigned task 2"));
  return bundle;
}

// --- miner ------------------------------------------------------------------

TEST(Miner, StreamKindsAndBinding) {
  const auto bundle = make_golden_bundle();
  LogMiner miner;
  const MineResult mined = miner.mine(bundle);
  // driver.log, exec1.log, exec2.log, nm-node01.cluster.log, rm.log
  ASSERT_EQ(mined.streams.size(), 5u);
  std::map<std::string, StreamKind> kinds;
  for (const MinedStream& s : mined.streams) kinds[s.name] = s.kind;
  EXPECT_EQ(kinds.at("rm.log"), StreamKind::kResourceManager);
  EXPECT_EQ(kinds.at("nm-node01.cluster.log"), StreamKind::kNodeManager);
  EXPECT_EQ(kinds.at("driver.log"), StreamKind::kDriver);
  EXPECT_EQ(kinds.at("exec1.log"), StreamKind::kExecutor);
  EXPECT_EQ(kinds.at("exec2.log"), StreamKind::kExecutor);
}

TEST(Miner, SynthesizesFirstLogEvents) {
  const auto bundle = make_golden_bundle();
  const MineResult mined = LogMiner().mine(bundle);
  std::int64_t driver_first = -1;
  std::int64_t exec_first_min = -1;
  for (const auto e : mined.events) {
    if (e.kind == EventKind::kDriverFirstLog) driver_first = e.ts_ms;
    if (e.kind == EventKind::kExecutorFirstLog &&
        (exec_first_min < 0 || e.ts_ms < exec_first_min)) {
      exec_first_min = e.ts_ms;
    }
  }
  EXPECT_EQ(driver_first, kEpoch + 1500);
  EXPECT_EQ(exec_first_min, kEpoch + 7300);
}

TEST(Miner, BindsExecutorStreamToContainer) {
  const auto bundle = make_golden_bundle();
  const MineResult mined = LogMiner().mine(bundle);
  for (const MinedStream& stream : mined.streams) {
    if (stream.name == "exec1.log") {
      EXPECT_EQ(stream.kind, StreamKind::kExecutor);
      ASSERT_TRUE(stream.bound_container.has_value());
      EXPECT_EQ(stream.bound_container->str(), kExec1);
      ASSERT_TRUE(stream.bound_app.has_value());
      EXPECT_EQ(stream.bound_app->id, 1);
    }
    if (stream.name == "driver.log") {
      EXPECT_EQ(stream.kind, StreamKind::kDriver);
      ASSERT_TRUE(stream.bound_app.has_value());
      EXPECT_EQ(stream.bound_app->id, 1);
    }
  }
}

TEST(Miner, ParallelMiningMatchesSerial) {
  const auto bundle = make_golden_bundle();
  const MineResult serial = LogMiner(MinerOptions{1}).mine(bundle);
  const MineResult parallel = LogMiner(MinerOptions{4}).mine(bundle);
  ASSERT_EQ(serial.events.size(), parallel.events.size());
  for (std::size_t i = 0; i < serial.events.size(); ++i) {
    EXPECT_EQ(serial.events[i].kind, parallel.events[i].kind);
    EXPECT_EQ(serial.events[i].ts_ms, parallel.events[i].ts_ms);
    EXPECT_EQ(serial.events[i].stream, parallel.events[i].stream);
  }
  EXPECT_EQ(serial.lines_total, parallel.lines_total);
}

TEST(Miner, CountsUnparsableLines) {
  logging::LogBundle bundle = make_golden_bundle();
  bundle.append("rm.log", "corrupted line without structure");
  bundle.append("rm.log", "\tat org.apache.Something(Stack.java:1)");
  const MineResult mined = LogMiner().mine(bundle);
  EXPECT_EQ(mined.lines_unparsed, 2u);
}

TEST(Miner, EventsSortedByTimestamp) {
  const MineResult mined = LogMiner().mine(make_golden_bundle());
  for (std::size_t i = 1; i < mined.events.size(); ++i) {
    EXPECT_LE(mined.events[i - 1].ts_ms, mined.events[i].ts_ms);
  }
}

// --- grouping ------------------------------------------------------------------

TEST(Grouping, OneAppThreeContainers) {
  const MineResult mined = LogMiner().mine(make_golden_bundle());
  const GroupResult grouped = group_events(mined.events);
  ASSERT_EQ(grouped.apps.size(), 1u);
  EXPECT_EQ(grouped.unattributed, 0u);
  const AppTimeline& app = grouped.apps.begin()->second;
  EXPECT_EQ(app.containers.size(), 3u);
  ASSERT_NE(app.am_container(), nullptr);
  EXPECT_EQ(app.worker_containers().size(), 2u);
}

TEST(Grouping, FirstOccurrenceWinsAndCountsAccumulate) {
  const MineResult mined = LogMiner().mine(make_golden_bundle());
  const GroupResult grouped = group_events(mined.events);
  const AppTimeline& app = grouped.apps.begin()->second;
  const auto exec1 = ContainerId::parse(kExec1);
  ASSERT_TRUE(exec1.has_value());
  const ContainerTimeline& c = app.containers.at(*exec1);
  EXPECT_EQ(c.ts(EventKind::kExecutorFirstTask), kEpoch + 11300);
  EXPECT_EQ(c.counts.at(EventKind::kExecutorFirstTask), 2);
}

TEST(Grouping, MinMaxWorkerTimestamps) {
  const MineResult mined = LogMiner().mine(make_golden_bundle());
  const GroupResult grouped = group_events(mined.events);
  const AppTimeline& app = grouped.apps.begin()->second;
  EXPECT_EQ(app.min_worker_ts(EventKind::kNmRunning), kEpoch + 6580);
  EXPECT_EQ(app.max_worker_ts(EventKind::kNmRunning), kEpoch + 7200);
  EXPECT_EQ(app.min_worker_ts(EventKind::kExecutorFirstTask), kEpoch + 11300);
}

// --- decomposition -----------------------------------------------------------------

TEST(Decompose, GoldenBundleExactValues) {
  const MineResult mined = LogMiner().mine(make_golden_bundle());
  const GroupResult grouped = group_events(mined.events);
  const Delays delays = decompose(grouped.apps.begin()->second);

  EXPECT_EQ(delays.total, 11300);          // 0 -> 11300
  EXPECT_EQ(delays.am, 4510);              // 0 -> 4510
  EXPECT_EQ(delays.cf, 6580);              // first exec RUNNING
  EXPECT_EQ(delays.cl, 7200);              // last exec RUNNING
  EXPECT_EQ(delays.cl_minus_cf, 620);
  EXPECT_EQ(delays.driver, 3000);          // 1500 -> 4500
  EXPECT_EQ(delays.executor, 4000);        // 7300 -> 11300
  EXPECT_EQ(delays.in_app, 7000);
  EXPECT_EQ(delays.out_app, 4300);         // total - in
  EXPECT_EQ(delays.alloc, 2000);           // 4600 -> 6600

  // Per-container components.
  ASSERT_EQ(delays.containers.size(), 3u);
  const auto acq = delays.worker_acquisitions();
  ASSERT_EQ(acq.size(), 2u);
  EXPECT_EQ(acq[0], 600);   // exec1: 5200 -> 5800
  EXPECT_EQ(acq[1], 1000);  // exec2: 5300 -> 6300
  const auto loc = delays.worker_localizations();
  EXPECT_EQ(loc[0], 600);  // 5900 -> 6500
  EXPECT_EQ(loc[1], 700);  // 6400 -> 7100
  const auto queue = delays.worker_queuings();
  EXPECT_EQ(queue[0], 80);
  EXPECT_EQ(queue[1], 100);
  const auto launch = delays.worker_launchings();
  EXPECT_EQ(launch[0], 720);  // 6580 -> 7300
  EXPECT_EQ(launch[1], 800);  // 7200 -> 8000

  // AM container launching ends at the *driver's* first log.
  for (const ContainerDelays& c : delays.containers) {
    if (c.is_am) {
      EXPECT_EQ(c.localization, 500);  // 200 -> 700
      EXPECT_EQ(c.launching, 720);     // 780 -> 1500
    }
  }
}

TEST(Decompose, IdentityInPlusOutEqualsTotal) {
  const MineResult mined = LogMiner().mine(make_golden_bundle());
  const GroupResult grouped = group_events(mined.events);
  const Delays delays = decompose(grouped.apps.begin()->second);
  ASSERT_TRUE(delays.total && delays.in_app && delays.out_app);
  EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
}

TEST(Decompose, MissingEventsYieldNullopt) {
  logging::LogBundle bundle;
  bundle.append("rm.log",
                line(0, kRmApp, kApp + " State change from NEW_SAVING to "
                                       "SUBMITTED on event = APP_NEW_SAVED"));
  const MineResult mined = LogMiner().mine(bundle);
  const GroupResult grouped = group_events(mined.events);
  ASSERT_EQ(grouped.apps.size(), 1u);
  const Delays delays = decompose(grouped.apps.begin()->second);
  EXPECT_FALSE(delays.total.has_value());
  EXPECT_FALSE(delays.am.has_value());
  EXPECT_FALSE(delays.driver.has_value());
  EXPECT_FALSE(delays.in_app.has_value());
  EXPECT_FALSE(delays.out_app.has_value());
}

// --- graph ---------------------------------------------------------------------------

TEST(Graph, GoldenBundleIsTemporallyConsistent) {
  const MineResult mined = LogMiner().mine(make_golden_bundle());
  const GroupResult grouped = group_events(mined.events);
  const SchedulingGraph graph =
      SchedulingGraph::build(grouped.apps.begin()->second);
  EXPECT_GT(graph.nodes().size(), 15u);
  EXPECT_GT(graph.edges().size(), 15u);
  EXPECT_TRUE(graph.validate().empty());
}

TEST(Graph, DetectsBackwardsEdgeUnderSkew) {
  // Shift the NM log 10 s into the future: RM ACQUIRED -> NM LOCALIZING
  // edges now go backwards.
  logging::LogBundle bundle;
  const auto rm_lines = make_golden_bundle();
  for (const auto& name : rm_lines.stream_names()) {
    for (const auto& raw : rm_lines.lines(name)) {
      if (name.rfind("nm-", 0) == 0) {
        const auto ts = logging::parse_epoch_ms(raw.substr(0, 23));
        ASSERT_TRUE(ts.has_value());
        bundle.append(name,
                      logging::format_epoch_ms(*ts - 10'000) + raw.substr(23));
      } else {
        bundle.append(name, raw);
      }
    }
  }
  const MineResult mined = LogMiner().mine(bundle);
  const GroupResult grouped = group_events(mined.events);
  const SchedulingGraph graph =
      SchedulingGraph::build(grouped.apps.begin()->second);
  EXPECT_FALSE(graph.validate().empty());
}

TEST(Graph, DotOutputContainsNodesAndShapes) {
  const MineResult mined = LogMiner().mine(make_golden_bundle());
  const GroupResult grouped = group_events(mined.events);
  const std::string dot =
      SchedulingGraph::build(grouped.apps.begin()->second).to_dot();
  EXPECT_NE(dot.find("digraph scheduling"), std::string::npos);
  EXPECT_NE(dot.find("SUBMITTED (1)"), std::string::npos);
  EXPECT_NE(dot.find("FIRST_TASK (14)"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

// --- façade ------------------------------------------------------------------------------

TEST(SdChecker, AnalyzeGoldenBundle) {
  const AnalysisResult result = SdChecker().analyze(make_golden_bundle());
  EXPECT_EQ(result.timelines.size(), 1u);
  EXPECT_EQ(result.delays.size(), 1u);
  EXPECT_EQ(result.aggregate.app_count(), 1u);
  EXPECT_TRUE(result.anomalies.empty());
  EXPECT_EQ(result.events_unattributed, 0u);
  const auto graph = result.graph_for(result.timelines.begin()->first);
  EXPECT_TRUE(graph.validate().empty());
  EXPECT_THROW(result.graph_for(ApplicationId{1, 99}), std::invalid_argument);
}

}  // namespace
}  // namespace sdc::checker
