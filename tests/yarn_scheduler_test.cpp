// Unit tests for the two scheduler policies.
#include <gtest/gtest.h>

#include <set>

#include "cluster/node.hpp"
#include "yarn/scheduler.hpp"

namespace sdc::yarn {
namespace {

const ApplicationId kApp{1'499'100'000'000, 1};
const ApplicationId kApp2{1'499'100'000'000, 2};

TEST(CapacityScheduler, FifoAssignmentWithinNodeCapacity) {
  CapacityScheduler scheduler;
  scheduler.enqueue(PendingAsk{kApp, {8, 4096}, 3,
                               InstanceType::kSparkExecutor, false, 0, {}});
  EXPECT_EQ(scheduler.pending_containers(), 3);

  cluster::Node node(NodeId{1}, {32, 131072});
  const auto grants = scheduler.assign_on_heartbeat(node, 128, 0);
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(scheduler.pending_containers(), 0);
  EXPECT_EQ(node.used(), (cluster::Resource{24, 12288}));
  for (const Grant& g : grants) {
    EXPECT_EQ(g.app, kApp);
    EXPECT_EQ(g.node, node.id());
    EXPECT_FALSE(g.opportunistic);
  }
}

TEST(CapacityScheduler, PartialAssignmentLeavesRemainder) {
  CapacityScheduler scheduler;
  scheduler.enqueue(PendingAsk{kApp, {8, 4096}, 10,
                               InstanceType::kSparkExecutor, false, 0, {}});
  cluster::Node small(NodeId{1}, {16, 131072});  // fits 2 executors
  const auto grants = scheduler.assign_on_heartbeat(small, 128, 0);
  EXPECT_EQ(grants.size(), 2u);
  EXPECT_EQ(scheduler.pending_containers(), 8);
}

TEST(CapacityScheduler, MaxAssignBatchRespected) {
  CapacityScheduler scheduler;
  scheduler.enqueue(PendingAsk{kApp, {1, 128}, 100,
                               InstanceType::kMrMapTask, false, 0, {}});
  cluster::Node node(NodeId{1}, {200, 1 << 20});
  EXPECT_EQ(scheduler.assign_on_heartbeat(node, 16, 0).size(), 16u);
  EXPECT_EQ(scheduler.pending_containers(), 84);
}

TEST(CapacityScheduler, SkipsOversizedHeadForLaterAsks) {
  // FIFO order, but a shape that does not fit must not block smaller asks
  // behind it on this node.
  CapacityScheduler scheduler;
  scheduler.enqueue(PendingAsk{kApp, {64, 4096}, 1,
                               InstanceType::kSparkExecutor, false, 0, {}});
  scheduler.enqueue(PendingAsk{kApp2, {2, 1024}, 1,
                               InstanceType::kMrMapTask, false, 0, {}});
  cluster::Node node(NodeId{1}, {32, 131072});
  const auto grants = scheduler.assign_on_heartbeat(node, 128, 0);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].app, kApp2);
  EXPECT_EQ(scheduler.pending_containers(), 1);  // the big ask still queued
}

TEST(CapacityScheduler, LocalityWaitDefersEligibility) {
  CapacityScheduler scheduler;
  PendingAsk ask{kApp, {1, 128}, 2, InstanceType::kSparkExecutor, false, 0, {}};
  ask.eligible_at = millis(500);
  scheduler.enqueue(ask);
  cluster::Node node(NodeId{1}, cluster::kNodeCapacity);
  // Before the locality wait elapses: nothing, even with free capacity.
  EXPECT_TRUE(scheduler.assign_on_heartbeat(node, 128, millis(100)).empty());
  EXPECT_EQ(scheduler.pending_containers(), 2);
  // At/after the deadline: granted.
  EXPECT_EQ(scheduler.assign_on_heartbeat(node, 128, millis(500)).size(), 2u);
}

TEST(CapacityScheduler, EligibleAsksBypassWaitingOnes) {
  CapacityScheduler scheduler;
  PendingAsk waiting{kApp, {1, 128}, 1, InstanceType::kSparkExecutor, false, 0, {}};
  waiting.eligible_at = seconds(10);
  scheduler.enqueue(waiting);
  scheduler.enqueue(
      PendingAsk{kApp2, {1, 128}, 1, InstanceType::kMrMapTask, false, 0, {}});
  cluster::Node node(NodeId{1}, cluster::kNodeCapacity);
  const auto grants = scheduler.assign_on_heartbeat(node, 128, millis(1));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].app, kApp2);
}

TEST(CapacityScheduler, NoImmediatePath) {
  CapacityScheduler scheduler;
  PendingAsk ask{kApp, {1, 128}, 5, InstanceType::kSparkExecutor, false, 0, {}};
  std::vector<cluster::Node*> nodes;
  EXPECT_TRUE(scheduler.assign_immediate(ask, nodes).empty());
}

TEST(OpportunisticScheduler, ImmediateGrantsIgnoreCapacity) {
  OpportunisticScheduler scheduler{Rng(1)};
  cluster::Node busy(NodeId{1}, {1, 128});
  ASSERT_TRUE(busy.try_allocate({1, 128}));  // completely full
  std::vector<cluster::Node*> nodes{&busy};
  PendingAsk ask{kApp, {8, 4096}, 4, InstanceType::kSparkExecutor, false, 0, {}};
  const auto grants = scheduler.assign_immediate(ask, nodes);
  ASSERT_EQ(grants.size(), 4u);
  for (const Grant& g : grants) {
    EXPECT_TRUE(g.opportunistic);
    EXPECT_EQ(g.node, busy.id());
  }
  // Node resources untouched: queuing happens NM-side.
  EXPECT_EQ(busy.used(), (cluster::Resource{1, 128}));
}

TEST(OpportunisticScheduler, SpreadsAcrossNodesRandomly) {
  OpportunisticScheduler scheduler{Rng(7)};
  std::vector<cluster::Node> storage;
  storage.reserve(10);
  std::vector<cluster::Node*> nodes;
  for (int i = 0; i < 10; ++i) {
    storage.emplace_back(NodeId{i + 1}, cluster::kNodeCapacity);
  }
  for (auto& n : storage) nodes.push_back(&n);
  PendingAsk ask{kApp, {1, 128}, 200, InstanceType::kSparkExecutor, false, 0, {}};
  const auto grants = scheduler.assign_immediate(ask, nodes);
  ASSERT_EQ(grants.size(), 200u);
  std::set<std::int32_t> seen;
  for (const Grant& g : grants) seen.insert(g.node.index);
  EXPECT_GE(seen.size(), 8u);  // nearly every node hit with 200 picks
}

TEST(OpportunisticScheduler, AmAsksTakeGuaranteedPath) {
  OpportunisticScheduler scheduler{Rng(3)};
  scheduler.enqueue(
      PendingAsk{kApp, {1, 1024}, 1, InstanceType::kSparkDriver, true, 0, {}});
  EXPECT_EQ(scheduler.pending_containers(), 1);
  cluster::Node node(NodeId{1}, cluster::kNodeCapacity);
  const auto grants = scheduler.assign_on_heartbeat(node, 16, 0);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_TRUE(grants[0].am);
  EXPECT_FALSE(grants[0].opportunistic);
}

TEST(OpportunisticScheduler, EmptyNodeListYieldsNothing) {
  OpportunisticScheduler scheduler{Rng(3)};
  std::vector<cluster::Node*> nodes;
  PendingAsk ask{kApp, {1, 128}, 3, InstanceType::kSparkExecutor, false, 0, {}};
  EXPECT_TRUE(scheduler.assign_immediate(ask, nodes).empty());
}

TEST(Schedulers, KindAndNames) {
  CapacityScheduler capacity;
  OpportunisticScheduler opportunistic{Rng(1)};
  EXPECT_EQ(capacity.kind(), SchedulerKind::kCapacity);
  EXPECT_EQ(opportunistic.kind(), SchedulerKind::kOpportunistic);
  EXPECT_EQ(capacity.name(), "CapacityScheduler");
  EXPECT_EQ(opportunistic.name(), "OpportunisticScheduler");
}

}  // namespace
}  // namespace sdc::yarn
