// Tests for the per-message completeness diagnostic.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

namespace sdc::checker {
namespace {

harness::ScenarioResult small_run() {
  harness::ScenarioConfig scenario;
  scenario.seed = 1501;
  for (int i = 0; i < 3; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 8 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 2);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return harness::run_scenario(scenario);
}

TEST(Completeness, FullCorpusIsComplete) {
  const auto analysis = SdChecker().analyze(small_run().logs);
  for (const auto& row : analysis.completeness()) {
    EXPECT_EQ(row.apps_missing, 0u)
        << event_name(row.kind) << " missing unexpectedly";
  }
  EXPECT_TRUE(analysis.render_completeness().empty());
}

TEST(Completeness, ReportsFourteenRows) {
  const AnalysisResult empty;
  const auto rows = empty.completeness();
  ASSERT_EQ(rows.size(), 14u);
  EXPECT_EQ(table1_number(rows.front().kind), 1);
  EXPECT_EQ(table1_number(rows.back().kind), 14);
}

TEST(Completeness, DetectsMissingDaemonLogs) {
  const auto run = small_run();
  // Drop every NodeManager file, as if they were never collected.
  logging::LogBundle partial;
  for (const auto& name : run.logs.stream_names()) {
    if (name.rfind("nm-", 0) == 0) continue;
    for (const auto& line : run.logs.lines(name)) partial.append(name, line);
  }
  const auto analysis = SdChecker().analyze(partial);
  std::size_t missing_localizing = 0;
  std::size_t missing_submitted = 0;
  for (const auto& row : analysis.completeness()) {
    if (row.kind == EventKind::kNmLocalizing) {
      missing_localizing = row.apps_missing;
    }
    if (row.kind == EventKind::kAppSubmitted) {
      missing_submitted = row.apps_missing;
    }
  }
  EXPECT_EQ(missing_localizing, 3u);  // the NM footprint is gone
  EXPECT_EQ(missing_submitted, 0u);   // RM events unaffected
  const std::string report = analysis.render_completeness();
  EXPECT_NE(report.find("LOCALIZING"), std::string::npos);
  EXPECT_NE(report.find("message  6"), std::string::npos);
}

}  // namespace
}  // namespace sdc::checker
