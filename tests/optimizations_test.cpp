// Tests for the implemented §V-B optimizations: the localization caching
// service, JVM reuse, and the heartbeat trade-off.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/generators.hpp"
#include "workloads/tpch.hpp"
#include "yarn/launch_model.hpp"
#include "yarn/localization_cache.hpp"

namespace sdc {
namespace {

// --- LocalizationCache unit tests -------------------------------------------

TEST(LocalizationCache, MissThenHit) {
  yarn::LocalizationCache cache;
  EXPECT_FALSE(cache.lookup("pkg-a"));
  cache.insert("pkg-a", 500);
  EXPECT_TRUE(cache.lookup("pkg-a"));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.used_mb(), 500);
}

TEST(LocalizationCache, LruEviction) {
  yarn::LocalizationCacheConfig config;
  config.capacity_mb = 1000;
  yarn::LocalizationCache cache(config);
  cache.insert("a", 400);
  cache.insert("b", 400);
  EXPECT_TRUE(cache.lookup("a"));  // refresh a: b is now LRU
  cache.insert("c", 400);          // evicts b
  EXPECT_TRUE(cache.lookup("a"));
  EXPECT_FALSE(cache.lookup("b"));
  EXPECT_TRUE(cache.lookup("c"));
  EXPECT_LE(cache.used_mb(), 1000);
}

TEST(LocalizationCache, OversizedPackageNeverCached) {
  yarn::LocalizationCacheConfig config;
  config.capacity_mb = 1000;
  yarn::LocalizationCache cache(config);
  cache.insert("huge", 2000);
  EXPECT_FALSE(cache.lookup("huge"));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(LocalizationCache, ReinsertRefreshesWithoutDoubleCounting) {
  yarn::LocalizationCache cache;
  cache.insert("a", 300);
  cache.insert("a", 300);
  EXPECT_DOUBLE_EQ(cache.used_mb(), 300);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(LocalizationCache, HitTimeScalesWithSize) {
  yarn::LocalizationCache cache;
  EXPECT_LT(cache.hit_time_ms(500), cache.hit_time_ms(5000));
  // 500 MB at 2 GB/s + 60 ms overhead = ~310 ms.
  EXPECT_NEAR(cache.hit_time_ms(500), 310.0, 5.0);
}

// --- warm JVM launch ----------------------------------------------------------

TEST(WarmJvm, LaunchFractionApplied) {
  yarn::LaunchModel model;
  Rng cold_rng(5);
  Rng warm_rng(5);
  const SimDuration cold = model.sample(yarn::InstanceType::kSparkExecutor,
                                        false, 1.0, 1.0, cold_rng, false);
  const SimDuration warm = model.sample(yarn::InstanceType::kSparkExecutor,
                                        false, 1.0, 1.0, warm_rng, true);
  EXPECT_NEAR(static_cast<double>(warm) / static_cast<double>(cold),
              model.config().warm_jvm_factor, 1e-5);
}

// --- end-to-end ------------------------------------------------------------------

harness::ScenarioConfig sql_jobs(int count, std::uint64_t seed) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  for (int i = 0; i < count; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 8 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return scenario;
}

TEST(CacheIntegration, RepeatedPackagesHitAfterWarmup) {
  harness::ScenarioConfig scenario = sql_jobs(8, 31);
  scenario.yarn.enable_localization_cache = true;
  const auto result = harness::run_scenario(scenario);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  // With 25 nodes and 8 x 5 containers, later containers repeatedly land
  // on already-warm nodes: their localization must be far below the
  // ~0.6 s HDFS path.
  std::size_t fast = 0;
  std::size_t total = 0;
  for (const auto& [app, delays] : analysis.delays) {
    for (const std::int64_t loc : delays.worker_localizations()) {
      ++total;
      if (loc < 450) ++fast;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(fast, total / 4);  // a meaningful share of cache hits
  // And the NM logs show the cache-serving message.
  bool cache_line_seen = false;
  for (const auto& name : result.logs.stream_names()) {
    for (const auto& line : result.logs.lines(name)) {
      if (line.find("from the local cache") != std::string::npos) {
        cache_line_seen = true;
      }
    }
  }
  EXPECT_TRUE(cache_line_seen);
}

TEST(CacheIntegration, DisabledCacheKeepsHdfsPath) {
  harness::ScenarioConfig scenario = sql_jobs(4, 32);
  scenario.yarn.enable_localization_cache = false;
  const auto result = harness::run_scenario(scenario);
  for (const auto& name : result.logs.stream_names()) {
    for (const auto& line : result.logs.lines(name)) {
      EXPECT_EQ(line.find("from the local cache"), std::string::npos);
    }
  }
}

TEST(JvmReuseIntegration, CutsDriverAndLaunchDelays) {
  harness::ScenarioConfig cold = sql_jobs(8, 33);
  harness::ScenarioConfig warm = sql_jobs(8, 33);
  for (auto& plan : warm.spark_jobs) plan.app.jvm_reuse = true;
  const auto cold_analysis =
      checker::SdChecker().analyze(harness::run_scenario(cold).logs);
  const auto warm_analysis =
      checker::SdChecker().analyze(harness::run_scenario(warm).logs);
  EXPECT_LT(warm_analysis.aggregate.driver.median(),
            cold_analysis.aggregate.driver.median() * 0.6);
  EXPECT_LT(warm_analysis.aggregate.launching.median(),
            cold_analysis.aggregate.launching.median() * 0.5);
  EXPECT_LT(warm_analysis.aggregate.total.median(),
            cold_analysis.aggregate.total.median());
}

TEST(HeartbeatTradeoff, AcquisitionTracksInterval) {
  const auto acquisition_for = [](SimDuration interval) {
    harness::ScenarioConfig scenario = sql_jobs(8, 34);
    for (auto& plan : scenario.spark_jobs) plan.app.am_heartbeat = interval;
    const auto analysis =
        checker::SdChecker().analyze(harness::run_scenario(scenario).logs);
    return analysis.aggregate.acquisition;
  };
  const SampleSet fast = acquisition_for(millis(200));
  const SampleSet slow = acquisition_for(millis(1600));
  EXPECT_LT(fast.p95(), 0.35);
  EXPECT_GT(slow.median(), fast.median() * 3);
  EXPECT_LT(slow.max(), 1.8);  // still capped by its own interval + slack
}

}  // namespace
}  // namespace sdc
