// Tests for the run-comparison facility (sdchecker diff).
#include <gtest/gtest.h>

#include <cmath>

#include "harness/scenario.hpp"
#include "sdchecker/compare.hpp"
#include "workloads/tpch.hpp"

namespace sdc::checker {
namespace {

AnalysisResult run(bool jvm_reuse, std::uint64_t seed = 1201, int jobs = 10) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 7 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    plan.app.jvm_reuse = jvm_reuse;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return SdChecker().analyze(harness::run_scenario(scenario).logs);
}

TEST(Compare, IdenticalRunsShowNoSignificantMovement) {
  const auto a = run(false);
  const auto b = run(false);
  const ComparisonResult comparison = compare(a, b);
  EXPECT_EQ(comparison.apps_a, 10u);
  EXPECT_EQ(comparison.apps_b, 10u);
  EXPECT_TRUE(comparison.significant(0.01).empty());
  for (const MetricDelta& delta : comparison.metrics) {
    if (delta.median_ratio) {
      EXPECT_DOUBLE_EQ(*delta.median_ratio, 1.0);
    }
  }
}

TEST(Compare, DetectsTheJvmReuseImprovement) {
  const auto before = run(false);
  const auto after = run(true);
  const ComparisonResult comparison = compare(before, after);
  const auto moved = comparison.significant(0.10);
  ASSERT_FALSE(moved.empty());
  // Driver delay and launching must be among the movers, both shrinking.
  bool driver_moved = false;
  bool launching_moved = false;
  for (const MetricDelta* delta : moved) {
    if (delta->metric == "driver") {
      driver_moved = true;
      EXPECT_LT(*delta->median_ratio, 0.7);
    }
    if (delta->metric == "launching") {
      launching_moved = true;
      EXPECT_LT(*delta->median_ratio, 0.5);
    }
    // Nothing should have gotten dramatically *worse*.
    EXPECT_LT(*delta->median_ratio, 1.5);
  }
  EXPECT_TRUE(driver_moved);
  EXPECT_TRUE(launching_moved);
  // Largest movement first.
  for (std::size_t i = 1; i < moved.size(); ++i) {
    EXPECT_GE(std::abs(*moved[i - 1]->median_ratio - 1.0),
              std::abs(*moved[i]->median_ratio - 1.0));
  }
}

TEST(Compare, RenderedTableContainsBothSides) {
  const auto a = run(false, 1202, 4);
  const auto b = run(true, 1202, 4);
  const std::string text = compare(a, b).render_text("base", "opt");
  EXPECT_NE(text.find("base median"), std::string::npos);
  EXPECT_NE(text.find("opt median"), std::string::npos);
  EXPECT_NE(text.find("driver"), std::string::npos);
  EXPECT_NE(text.find("x"), std::string::npos);  // a ratio cell
}

TEST(Compare, HandlesEmptySides) {
  const AnalysisResult empty;
  const auto full = run(false, 1203, 3);
  const ComparisonResult comparison = compare(empty, full);
  EXPECT_EQ(comparison.apps_a, 0u);
  EXPECT_TRUE(comparison.significant().empty());  // no ratios computable
  for (const MetricDelta& delta : comparison.metrics) {
    EXPECT_FALSE(delta.median_a.has_value());
  }
  (void)comparison.render_text();
}

}  // namespace
}  // namespace sdc::checker
