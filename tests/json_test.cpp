// Tests for the JSON writer and the analysis JSON export.
#include <gtest/gtest.h>

#include <cmath>

#include "common/json.hpp"
#include "harness/scenario.hpp"
#include "sdchecker/export.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

TEST(JsonWriter, ObjectsArraysAndCommas) {
  json::Writer w;
  w.begin_object();
  w.field("a", std::int64_t{1});
  w.field("b", "two");
  w.key("c").begin_array().value(std::int64_t{3}).value(std::int64_t{4}).end_array();
  w.key("d").begin_object().field("e", true).end_object();
  w.key("f").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"a":1,"b":"two","c":[3,4],"d":{"e":true},"f":null})");
}

TEST(JsonWriter, OptionalValues) {
  json::Writer w;
  w.begin_object();
  w.field("present", std::optional<std::int64_t>{42});
  w.field("absent", std::optional<std::int64_t>{});
  w.end_object();
  EXPECT_EQ(w.str(), R"({"present":42,"absent":null})");
}

TEST(JsonWriter, EscapesControlCharacters) {
  EXPECT_EQ(json::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, DoubleFormatting) {
  json::Writer w;
  w.begin_array();
  w.value(1.5);
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(w.str(), "[1.5,null]");
}

TEST(JsonWriter, NestedArraysOfObjects) {
  json::Writer w;
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object().field("i", static_cast<std::int64_t>(i)).end_object();
  }
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"i":0},{"i":1}])");
}

TEST(AnalysisJson, StructureAndContent) {
  harness::ScenarioConfig scenario;
  scenario.seed = 501;
  harness::SparkSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app = workloads::make_tpch_query(1, 1024, 2);
  scenario.spark_jobs.push_back(std::move(plan));
  const auto analysis =
      checker::SdChecker().analyze(harness::run_scenario(scenario).logs);
  const std::string text = checker::analysis_json(analysis);

  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
  EXPECT_NE(text.find("\"summary\":{"), std::string::npos);
  EXPECT_NE(text.find("\"aggregate\":{"), std::string::npos);
  EXPECT_NE(text.find("\"apps\":["), std::string::npos);
  EXPECT_NE(text.find("\"app\":\"application_1499100000000_0001\""),
            std::string::npos);
  EXPECT_NE(text.find("\"total_ms\":"), std::string::npos);
  EXPECT_NE(text.find("\"is_am\":true"), std::string::npos);
  EXPECT_NE(text.find("\"anomalies\":[]"), std::string::npos);
  // Balanced braces/brackets (rough structural sanity).
  std::int64_t depth = 0;
  for (const char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(AnalysisJson, EmptyAnalysis) {
  checker::AnalysisResult empty;
  const std::string text = checker::analysis_json(empty);
  EXPECT_NE(text.find("\"apps\":[]"), std::string::npos);
  EXPECT_NE(text.find("\"applications\":0"), std::string::npos);
}

}  // namespace
}  // namespace sdc
