// Nested fan-out on one ThreadPool (help-while-wait).
//
// Fleet mode finalizes a corpus from inside a pool task and that
// finalize itself calls `parallel_for` on the same pool — so a waiter
// must never block while the tasks it waits for sit in the queue behind
// it.  The first test is the exact scenario that deadlocked under the
// old blocking wait: a single-worker pool whose only worker issues an
// inner `parallel_for`.  The stress tests run the corpus×shard shape on
// a multi-worker pool and are part of the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace sdc {
namespace {

TEST(ThreadPoolNested, InnerParallelForFromSingleWorkerCompletes) {
  // Pre help-while-wait this deadlocked: the only worker parked in the
  // inner wait while the inner shard task sat queued behind it.  (A
  // regression hangs the test; ctest's timeout turns that into a fail.)
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.submit([&] {
    parallel_for(pool, 16, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
  });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 120);
}

TEST(ThreadPoolNested, TwoLevelFanOutComputesEveryCell) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  parallel_for(pool, 8, [&](std::size_t corpus) {
    parallel_for(pool, 16, [&](std::size_t shard) {
      total.fetch_add(corpus * 100 + shard + 1, std::memory_order_relaxed);
    });
  });
  // sum_{corpus<8} (16*100*corpus + sum_{1..16}) = 1600*28 + 8*136.
  EXPECT_EQ(total.load(), 1600u * 28u + 8u * 136u);
}

TEST(ThreadPoolNested, ThreeDeepNestingOnTwoWorkers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for(pool, 3, [&](std::size_t) {
    parallel_for(pool, 3, [&](std::size_t) {
      parallel_for(pool, 3, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(count.load(), 27);
}

TEST(ThreadPoolNested, InnerExceptionPropagatesThroughNestedWaits) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 4,
                            [&](std::size_t i) {
                              parallel_for(pool, 4, [&](std::size_t j) {
                                if (i == 1 && j == 1) {
                                  throw std::runtime_error("inner failure");
                                }
                              });
                            }),
               std::runtime_error);
}

TEST(ThreadPoolNested, HelpWhileWaitFeedsMetricSinks) {
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> help{0};
  std::atomic<std::int64_t> depth{0};
  ThreadPoolMetricSinks sinks;
  sinks.tasks = &tasks;
  sinks.help_while_wait = &help;
  sinks.queue_depth = &depth;
  set_thread_pool_metric_sinks(sinks);
  {
    ThreadPool pool(1);
    pool.submit([&] { parallel_for(pool, 8, [](std::size_t) {}); });
    pool.wait_idle();
  }
  // Detach before the local atomics go out of scope.
  set_thread_pool_metric_sinks(ThreadPoolMetricSinks{});
  // The outer task plus at least one inner shard ran...
  EXPECT_GE(tasks.load(), 2u);
  // ...and with one worker occupied by the outer task, every inner
  // shard can only have run on the help-while-wait path.
  EXPECT_GE(help.load(), 1u);
  // Every submit was balanced by a pop.
  EXPECT_EQ(depth.load(), 0);
}

TEST(ThreadPoolNested, CorpusShardStress) {
  // The fleet shape, oversubscribed: more outer tasks than workers, two
  // inner waves each (stitch + finalize), checked for lost or doubled
  // work.  Run under TSan in CI.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  parallel_for(pool, 12, [&](std::size_t) {
    for (int wave = 0; wave < 2; ++wave) {
      parallel_for(pool, 8, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 12u * 2u * 8u);
}

TEST(ThreadPoolNested, ChunkedNestedFanOut) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> covered{0};
  parallel_for_chunked(pool, 1000, 64, [&](std::size_t begin,
                                           std::size_t end) {
    parallel_for_chunked(pool, end - begin, 16,
                         [&](std::size_t inner_begin, std::size_t inner_end) {
                           covered.fetch_add(inner_end - inner_begin,
                                             std::memory_order_relaxed);
                         });
  });
  EXPECT_EQ(covered.load(), 1000u);
}

}  // namespace
}  // namespace sdc
