// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, periodic tasks.
#include <gtest/gtest.h>

#include <vector>

#include "simcore/engine.hpp"

namespace sdc::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(millis(30), [&] { order.push_back(3); });
  engine.schedule_at(millis(10), [&] { order.push_back(1); });
  engine.schedule_at(millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(millis(5), [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine engine;
  SimTime seen = -1;
  engine.schedule_at(millis(123), [&] { seen = engine.now(); });
  engine.run();
  EXPECT_EQ(seen, millis(123));
  EXPECT_EQ(engine.now(), millis(123));
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine engine;
  SimTime inner = -1;
  engine.schedule_at(millis(100), [&] {
    engine.schedule_after(millis(50), [&] { inner = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(inner, millis(150));
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine engine;
  SimTime fired = -1;
  engine.schedule_at(millis(10), [&] {
    engine.schedule_after(millis(-5), [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, millis(10));
}

TEST(Engine, RunUntilStopsBeforeLaterEvents) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(millis(10), [&] { ++fired; });
  engine.schedule_at(millis(100), [&] { ++fired; });
  EXPECT_EQ(engine.run(millis(50)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending(), 1u);
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StepProcessesSingleEvent) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(millis(1), [&] { ++fired; });
  engine.schedule_at(millis(2), [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CancelPreventsCallback) {
  Engine engine;
  int fired = 0;
  TimerHandle handle = engine.schedule_at(millis(10), [&] { ++fired; });
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  engine.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(engine.executed(), 0u);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine engine;
  int fired = 0;
  TimerHandle handle = engine.schedule_at(millis(1), [&] { ++fired; });
  engine.run();
  EXPECT_FALSE(handle.active());
  handle.cancel();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, DefaultHandleIsInert) {
  TimerHandle handle;
  EXPECT_FALSE(handle.active());
  handle.cancel();  // must not crash
}

TEST(Engine, RequestStopExitsRun) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(millis(1), [&] {
    ++fired;
    engine.request_stop();
  });
  engine.schedule_at(millis(2), [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsScheduledDuringRunAreProcessed) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.schedule_after(millis(1), recurse);
  };
  engine.schedule_at(0, recurse);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.now(), millis(99));
}

TEST(PeriodicTask, FiresAtFixedInterval) {
  Engine engine;
  std::vector<SimTime> fires;
  PeriodicTask task = PeriodicTask::start(engine, millis(10), millis(25), [&] {
    fires.push_back(engine.now());
    return fires.size() < 4;
  });
  engine.run();
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_EQ(fires[0], millis(10));
  EXPECT_EQ(fires[1], millis(35));
  EXPECT_EQ(fires[3], millis(85));
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTask, CancelStopsChain) {
  Engine engine;
  int fires = 0;
  PeriodicTask task = PeriodicTask::start(engine, 0, millis(10), [&] {
    ++fires;
    return true;
  });
  engine.schedule_at(millis(35), [&] { task.cancel(); });
  engine.run(millis(200));
  EXPECT_EQ(fires, 4);  // t=0,10,20,30
  EXPECT_FALSE(task.active());
}

TEST(Engine, DeterministicEventCountAcrossRuns) {
  const auto run_once = [] {
    Engine engine;
    std::uint64_t sum = 0;
    for (int i = 0; i < 50; ++i) {
      engine.schedule_at(millis(i * 7 % 13), [&sum, i, &engine] {
        sum += static_cast<std::uint64_t>(i) * engine.now();
      });
    }
    engine.run();
    return sum;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sdc::sim
