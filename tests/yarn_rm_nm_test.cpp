// Behavioural tests of ResourceManager + NodeManager through small
// simulations with a hand-written AppMaster (no Spark layer): protocol
// ordering, log emission, resource accounting, heartbeat-bounded
// acquisition, opportunistic queuing, and the never-used-container path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "cluster/cluster.hpp"
#include "logging/log_bundle.hpp"
#include "logging/timestamp.hpp"
#include "simcore/engine.hpp"
#include "yarn/node_manager.hpp"
#include "yarn/resource_manager.hpp"

namespace sdc::yarn {
namespace {

/// Minimal test AM: registers immediately when its process starts,
/// requests `want` executors, starts every acquired container (up to
/// `launch_cap`), finishes containers after `task_duration`, and
/// unregisters when all launched containers completed.
class TestAm final : public AmProtocol {
 public:
  struct Config {
    std::int32_t want = 2;
    std::int32_t launch_cap = 1'000'000;  // launch everything by default
    cluster::Resource resource{8, 4096};
    SimDuration task_duration = seconds(2);
    bool opportunistic_expected = false;
  };

  TestAm(cluster::Cluster& cluster, ResourceManager& rm, Config config,
         ApplicationId app, ContainerId am_container, NodeId node)
      : cluster_(cluster),
        rm_(rm),
        config_(config),
        app_(app),
        am_container_(am_container),
        node_(node) {
    rm_.register_attempt(app_, this);
    rm_.request_containers(
        app_, ContainerAsk{config_.resource, config_.want,
                           InstanceType::kSparkExecutor});
  }

  void on_containers_acquired(
      const std::vector<Allocation>& acquired) override {
    for (const Allocation& allocation : acquired) {
      acquired_.push_back(allocation);
      if (launched_ >= config_.launch_cap) continue;
      ++launched_;
      LaunchSpec spec;
      spec.id = allocation.id;
      spec.resource = allocation.resource;
      spec.type = allocation.type;
      spec.opportunistic = allocation.opportunistic;
      spec.on_process_started = [this, allocation](SimTime) {
        ++started_;
        cluster_.engine().schedule_after(config_.task_duration,
                                         [this, allocation] {
                                           rm_.node_manager(allocation.node)
                                               .finish_container(allocation.id);
                                           ++completed_;
                                           maybe_finish();
                                         });
      };
      NodeManager& nm = rm_.node_manager(allocation.node);
      cluster_.engine().schedule_after(
          millis(1), [&nm, spec = std::move(spec)] { nm.start_container(spec); });
    }
    maybe_finish();
  }

  void maybe_finish() {
    const std::int32_t expected =
        std::min(config_.want, config_.launch_cap);
    if (finished_ || completed_ < expected) return;
    finished_ = true;
    rm_.unregister_attempt(app_);
    const ContainerId am = am_container_;
    const NodeId node = node_;
    auto& rm = rm_;
    cluster_.engine().schedule_after(millis(10), [&rm, am, node] {
      rm.node_manager(node).finish_container(am);
    });
  }

  std::vector<Allocation> acquired_;
  std::int32_t launched_ = 0;
  std::int32_t started_ = 0;
  std::int32_t completed_ = 0;
  bool finished_ = false;

 private:
  cluster::Cluster& cluster_;
  ResourceManager& rm_;
  Config config_;
  ApplicationId app_;
  ContainerId am_container_;
  NodeId node_;
};

/// Fixture wiring a small cluster + RM + NMs and a TestAm factory.
class YarnSimTest : public ::testing::Test {
 protected:
  void build(YarnConfig yarn_config, std::int32_t nodes = 4) {
    cluster_config_.worker_nodes = nodes;
    cluster_ = std::make_unique<cluster::Cluster>(engine_, cluster_config_);
    rm_ = std::make_unique<ResourceManager>(*cluster_, logs_, yarn_config, 99);
    for (std::size_t i = 0; i < cluster_->node_count(); ++i) {
      nms_.push_back(std::make_unique<NodeManager>(
          *cluster_, cluster_->node(i), logs_, rm_->config(),
          rm_->launch_model(), Rng(1000 + i)));
    }
    std::vector<NodeManager*> ptrs;
    for (auto& nm : nms_) ptrs.push_back(nm.get());
    rm_->attach_node_managers(ptrs);
    rm_->start();
  }

  ApplicationId submit_test_app(TestAm::Config am_config) {
    AppSubmission submission;
    submission.name = "test-app";
    submission.on_am_started = [this, am_config](ApplicationId app,
                                                 ContainerId am_container,
                                                 NodeId node, SimTime) {
      ams_.push_back(std::make_unique<TestAm>(*cluster_, *rm_, am_config, app,
                                              am_container, node));
    };
    return rm_->submit(std::move(submission));
  }

  /// Runs until all submitted test apps finished (or `cap`).
  void run_to_completion(SimTime cap = seconds(300)) {
    SimTime t = 0;
    const auto all_done = [this] {
      if (ams_.empty()) return false;
      for (const auto& am : ams_) {
        if (!am->finished_) return false;
      }
      return true;
    };
    while (!all_done() && t < cap) {
      t += seconds(5);
      engine_.run(t);
    }
    engine_.run(engine_.now() + seconds(2));
  }

  /// Counts lines containing `needle` in stream `stream`.
  std::size_t count_lines(const std::string& stream,
                          const std::string& needle) const {
    std::size_t n = 0;
    for (const auto& line : logs_.lines(stream)) {
      if (line.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

  sim::Engine engine_;
  cluster::ClusterConfig cluster_config_;
  logging::LogBundle logs_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<ResourceManager> rm_;
  std::vector<std::unique_ptr<NodeManager>> nms_;
  std::vector<std::unique_ptr<TestAm>> ams_;
};

TEST_F(YarnSimTest, SingleAppFullLifecycle) {
  build(YarnConfig{});
  submit_test_app({});
  run_to_completion();
  ASSERT_EQ(ams_.size(), 1u);
  EXPECT_TRUE(ams_[0]->finished_);
  EXPECT_EQ(ams_[0]->started_, 2);
  EXPECT_EQ(ams_[0]->completed_, 2);

  // RM log has the full app state chain.
  EXPECT_EQ(count_lines("rm.log", "State change from NEW_SAVING to SUBMITTED"),
            1u);
  EXPECT_EQ(count_lines("rm.log", "State change from SUBMITTED to ACCEPTED"),
            1u);
  EXPECT_EQ(count_lines("rm.log",
                        "State change from ACCEPTED to RUNNING on event = "
                        "ATTEMPT_REGISTERED"),
            1u);
  EXPECT_EQ(count_lines("rm.log", "State change from FINAL_SAVING to FINISHED"),
            1u);
  // Three containers: AM + 2 executors, each ALLOCATED and ACQUIRED.
  EXPECT_EQ(count_lines("rm.log", "Transitioned from NEW to ALLOCATED"), 3u);
  EXPECT_EQ(count_lines("rm.log", "Transitioned from ALLOCATED to ACQUIRED"),
            3u);
}

TEST_F(YarnSimTest, ResourcesFullyReleasedAfterCompletion) {
  build(YarnConfig{});
  submit_test_app({});
  run_to_completion();
  for (std::size_t i = 0; i < cluster_->node_count(); ++i) {
    EXPECT_EQ(cluster_->node(i).used(), (cluster::Resource{0, 0}))
        << "node " << i;
    EXPECT_EQ(cluster_->node(i).io_flows(), 0) << "node " << i;
  }
  for (const auto& nm : nms_) EXPECT_EQ(nm->live_containers(), 0u);
}

TEST_F(YarnSimTest, NmLogsFullContainerChain) {
  build(YarnConfig{});
  submit_test_app({});
  run_to_completion();
  std::size_t localizing = 0;
  std::size_t scheduled = 0;
  std::size_t running = 0;
  std::size_t exited = 0;
  for (const auto& name : logs_.stream_names()) {
    if (name.rfind("nm-", 0) != 0) continue;
    localizing += count_lines(name, "from NEW to LOCALIZING");
    scheduled += count_lines(name, "from LOCALIZING to SCHEDULED");
    running += count_lines(name, "from SCHEDULED to RUNNING");
    exited += count_lines(name, "from RUNNING to EXITED_WITH_SUCCESS");
  }
  EXPECT_EQ(localizing, 3u);
  EXPECT_EQ(scheduled, 3u);
  EXPECT_EQ(running, 3u);
  EXPECT_EQ(exited, 3u);
}

TEST_F(YarnSimTest, OverRequestLeavesReleasedContainers) {
  // The SPARK-21562 shape: ask for 6, launch only 2; under the
  // opportunistic scheduler the surplus stays ACQUIRED until unregister
  // reclaims it (-> RELEASED), with no NM activity.
  YarnConfig config;
  config.scheduler = SchedulerKind::kOpportunistic;
  build(config);
  TestAm::Config am;
  am.want = 6;
  am.launch_cap = 2;
  submit_test_app(am);
  run_to_completion();
  ASSERT_EQ(ams_.size(), 1u);
  EXPECT_EQ(static_cast<int>(ams_[0]->acquired_.size()), 6);
  EXPECT_EQ(ams_[0]->launched_, 2);
  EXPECT_EQ(count_lines("rm.log", "Transitioned from ACQUIRED to RELEASED"),
            4u);
  for (std::size_t i = 0; i < cluster_->node_count(); ++i) {
    EXPECT_EQ(cluster_->node(i).used(), (cluster::Resource{0, 0}));
  }
}

TEST_F(YarnSimTest, AcquisitionBoundedByAmHeartbeat) {
  build(YarnConfig{});
  submit_test_app({});
  run_to_completion();
  // Extract ALLOCATED/ACQUIRED timestamps per executor container from the
  // RM log and check the gap is within [0, heartbeat + slack].
  std::map<std::string, std::int64_t> allocated;
  std::int32_t checked = 0;
  for (const auto& line : logs_.lines("rm.log")) {
    const auto pos = line.find("container_");
    if (pos == std::string::npos) continue;
    const std::string id = line.substr(pos, line.find(' ', pos) - pos);
    const auto ts = logging::parse_epoch_ms(line.substr(0, 23));
    ASSERT_TRUE(ts.has_value());
    if (line.find("from NEW to ALLOCATED") != std::string::npos) {
      allocated[id] = *ts;
    } else if (line.find("from ALLOCATED to ACQUIRED") != std::string::npos) {
      ASSERT_TRUE(allocated.contains(id)) << id;
      const std::int64_t gap = *ts - allocated[id];
      EXPECT_GE(gap, 0);
      EXPECT_LE(gap, 1100);  // 1 s heartbeat + RPC slack
      ++checked;
    }
  }
  EXPECT_EQ(checked, 3);
}

TEST_F(YarnSimTest, OpportunisticContainersQueueOnBusyNode) {
  // One tiny node, centralized AM + opportunistic executors: the executors
  // that land on the busy node must wait (SCHEDULED -> RUNNING gap).
  YarnConfig config;
  config.scheduler = SchedulerKind::kOpportunistic;
  build(config, /*nodes=*/1);
  // Fill most of the node so only one executor fits alongside the AM.
  ASSERT_TRUE(cluster_->node(0).try_allocate({15, 8192}));
  TestAm::Config am;
  am.want = 3;
  am.resource = {8, 4096};
  am.task_duration = seconds(3);
  submit_test_app(am);
  run_to_completion(seconds(600));
  ASSERT_EQ(ams_.size(), 1u);
  EXPECT_TRUE(ams_[0]->finished_);
  EXPECT_EQ(ams_[0]->completed_, 3);
  EXPECT_GE(count_lines("nm-node01.cluster.log",
                        "will be queued, node resources exhausted"),
            1u);
  cluster_->node(0).release({15, 8192});
  EXPECT_EQ(cluster_->node(0).used(), (cluster::Resource{0, 0}));
}

TEST_F(YarnSimTest, TwoAppsShareClusterAndBothFinish) {
  build(YarnConfig{});
  submit_test_app({});
  engine_.schedule_at(seconds(1), [this] {
    TestAm::Config am;
    am.want = 3;
    submit_test_app(am);
  });
  run_to_completion();
  ASSERT_EQ(ams_.size(), 2u);
  EXPECT_TRUE(ams_[0]->finished_);
  EXPECT_TRUE(ams_[1]->finished_);
  EXPECT_EQ(rm_->containers_allocated(), 2 + 1 + 3 + 1);
}

TEST_F(YarnSimTest, UnknownNodeLookupThrows) {
  build(YarnConfig{});
  EXPECT_THROW((void)rm_->node_manager(NodeId{99}), std::invalid_argument);
}

TEST_F(YarnSimTest, FinishBeforeStartRpcIsDropped) {
  // A finish racing ahead of the start RPC must not leak a lifecycle:
  // the NM remembers the finish and drops the late start.
  build(YarnConfig{});
  const ContainerId id{{1, 1}, 1, 7};
  nms_[0]->finish_container(id);  // records, no throw
  LaunchSpec spec;
  spec.id = id;
  spec.resource = {8, 4096};
  spec.opportunistic = true;  // no pre-reserved resources to release
  nms_[0]->start_container(spec);
  engine_.run(engine_.now() + seconds(5));
  EXPECT_EQ(nms_[0]->live_containers(), 0u);
  EXPECT_EQ(cluster_->node(0).used(), (cluster::Resource{0, 0}));
}

}  // namespace
}  // namespace sdc::yarn
