// Regression test against a frozen log corpus (testdata/golden_small).
//
// The corpus is committed text — it never changes when the simulator's
// cost models are recalibrated — so these exact-value assertions pin the
// *parser + grouping + decomposition* behaviour: any change to SDchecker
// that alters what it reads out of the same logs fails here.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "sdchecker/sdchecker.hpp"
#include "sdchecker/timeline.hpp"

namespace sdc::checker {
namespace {

std::filesystem::path corpus_dir() {
  // Tests run from the build tree; the corpus lives in the source tree.
  for (std::filesystem::path dir = std::filesystem::current_path();
       !dir.empty() && dir != dir.root_path(); dir = dir.parent_path()) {
    const auto candidate = dir / "testdata" / "golden_small";
    if (std::filesystem::is_directory(candidate)) return candidate;
  }
  return std::filesystem::path("testdata") / "golden_small";
}

class GoldenCorpus : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new AnalysisResult(SdChecker().analyze_directory(corpus_dir()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const AnalysisResult& result() { return *result_; }

 private:
  static AnalysisResult* result_;
};
AnalysisResult* GoldenCorpus::result_ = nullptr;

TEST_F(GoldenCorpus, MiningCounts) {
  EXPECT_EQ(result().lines_total, 195u);
  EXPECT_EQ(result().lines_unparsed, 0u);
  EXPECT_EQ(result().events_total, 108u);
  EXPECT_EQ(result().events_unattributed, 0u);
  EXPECT_EQ(result().timelines.size(), 3u);
}

TEST_F(GoldenCorpus, ExactDecompositionApp1) {
  const ApplicationId app{1'499'100'000'000, 1};
  const Delays& delays = result().delays.at(app);
  EXPECT_EQ(delays.total, 10'931);
  EXPECT_EQ(delays.am, 4'208);
  EXPECT_EQ(delays.driver, 2'520);
  EXPECT_EQ(delays.executor, 4'549);
  EXPECT_EQ(delays.in_app, 7'069);
  EXPECT_EQ(delays.out_app, 3'862);
  EXPECT_EQ(delays.alloc, 1'152);
}

TEST_F(GoldenCorpus, ExactDecompositionApp2) {
  const ApplicationId app{1'499'100'000'000, 2};
  const Delays& delays = result().delays.at(app);
  EXPECT_EQ(delays.total, 12'154);
  EXPECT_EQ(delays.driver, 3'077);
  EXPECT_EQ(delays.executor, 5'721);
  EXPECT_EQ(delays.alloc, 649);
}

TEST_F(GoldenCorpus, ExactDecompositionApp3) {
  const ApplicationId app{1'499'100'000'000, 3};
  const Delays& delays = result().delays.at(app);
  EXPECT_EQ(delays.total, 11'097);
  EXPECT_EQ(delays.am, 4'463);
  EXPECT_EQ(delays.in_app, 7'470);
}

TEST_F(GoldenCorpus, PerContainerStructure) {
  for (const auto& [app, delays] : result().delays) {
    ASSERT_EQ(delays.containers.size(), 3u) << app.str();  // AM + 2 workers
    EXPECT_EQ(delays.worker_localizations().size(), 2u);
    EXPECT_EQ(delays.worker_launchings().size(), 2u);
    EXPECT_EQ(delays.worker_idles().size(), 2u);
    for (const ContainerDelays& container : delays.containers) {
      if (container.is_am) {
        EXPECT_FALSE(container.executor_idle.has_value());
      } else {
        ASSERT_TRUE(container.executor_idle.has_value());
        EXPECT_GT(*container.executor_idle, 0);
      }
    }
    // The earliest-booting executor idles at least the app-level executor
    // delay (its FIRST_LOG is the app's, its first task is >= the app's).
    const auto idles = delays.worker_idles();
    EXPECT_GE(*std::max_element(idles.begin(), idles.end()),
              *delays.executor);
  }
}

TEST_F(GoldenCorpus, NoAnomaliesAndGraphsClean) {
  EXPECT_TRUE(result().anomalies.empty());
  for (const auto& [app, timeline] : result().timelines) {
    EXPECT_TRUE(result().graph_for(app).validate().empty()) << app.str();
  }
}

TEST_F(GoldenCorpus, TimelineRenderStable) {
  const ApplicationId app{1'499'100'000'000, 1};
  const std::string text = render_timeline(result().timelines.at(app));
  EXPECT_EQ(text.find("application_1499100000000_0001\n"), 0u);
  EXPECT_NE(text.find("+0.000s"), std::string::npos);
  EXPECT_NE(text.find("SUBMITTED (1)"), std::string::npos);
  EXPECT_NE(text.find("FIRST_TASK (14)"), std::string::npos);
  // Timeline ends at the app-finished bookkeeping event.
  EXPECT_NE(text.find("APP_FINISHED"), std::string::npos);
}

}  // namespace
}  // namespace sdc::checker
