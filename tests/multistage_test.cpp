// Multi-stage job tests: later stages keep producing "Got assigned task"
// lines mid-execution, and the decomposition must key on the *first* task
// only (paper §IV-B: in-execution scheduling overlaps task runtime and is
// deliberately excluded from the scheduling delay).
#include <gtest/gtest.h>

#include <set>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

namespace sdc {
namespace {

harness::ScenarioResult run_stages(std::int32_t stages,
                                   std::uint64_t seed = 801) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  harness::SparkSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app = workloads::make_tpch_query(1, 2048, 3);
  plan.app.num_stages = stages;
  scenario.spark_jobs.push_back(std::move(plan));
  return harness::run_scenario(scenario);
}

TEST(MultiStage, EveryStageAssignsTasksToEveryExecutor) {
  const auto result = run_stages(4);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  ASSERT_EQ(analysis.timelines.size(), 1u);
  const checker::AppTimeline& timeline = analysis.timelines.begin()->second;
  for (const auto& [cid, container] : timeline.containers) {
    if (cid.is_am()) continue;
    ASSERT_TRUE(container.has(checker::EventKind::kExecutorFirstTask));
    EXPECT_EQ(container.counts.at(checker::EventKind::kExecutorFirstTask), 4);
  }
}

TEST(MultiStage, FirstTaskTimestampIsTheMinimumAssignment) {
  const auto result = run_stages(4);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  const checker::AppTimeline& timeline = analysis.timelines.begin()->second;
  // Ground truth: the driver recorded the first assignment instant.
  const auto truth_ms = to_millis(result.jobs[0].first_task_at) +
                        1'499'100'000'000;
  const auto mined = timeline.min_worker_ts(checker::EventKind::kExecutorFirstTask);
  ASSERT_TRUE(mined.has_value());
  EXPECT_NEAR(static_cast<double>(*mined), static_cast<double>(truth_ms), 1.0);
}

TEST(MultiStage, StageCountDoesNotChangeDecomposedStructure) {
  // Different stage counts change the log volume, not which events the
  // decomposition uses; all invariants must keep holding.
  for (const std::int32_t stages : {1, 2, 6}) {
    const auto result = run_stages(stages, 802);
    const auto analysis = checker::SdChecker().analyze(result.logs);
    const auto& delays = analysis.delays.begin()->second;
    ASSERT_TRUE(delays.total && delays.in_app && delays.out_app) << stages;
    EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
    EXPECT_TRUE(analysis.anomalies.empty()) << stages;
    EXPECT_TRUE(
        analysis.graph_for(analysis.delays.begin()->first).validate().empty());
  }
}

TEST(MultiStage, TaskIdsAreGloballyUnique) {
  const auto result = run_stages(3, 803);
  std::set<std::string> tids;
  std::size_t assignments = 0;
  for (const auto& name : result.logs.stream_names()) {
    for (const auto& line : result.logs.lines(name)) {
      const auto pos = line.find("Got assigned task ");
      if (pos == std::string::npos) continue;
      ++assignments;
      tids.insert(line.substr(pos + 18));
    }
  }
  EXPECT_EQ(assignments, 3u * 3u);  // 3 executors x 3 stages
  EXPECT_EQ(tids.size(), assignments);
}

}  // namespace
}  // namespace sdc
