// Unit tests for src/logging: timestamp codec, record rendering, bundle
// round-trips, logger clock/skew behaviour.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include "logging/log_bundle.hpp"
#include "logging/logger.hpp"
#include "logging/record.hpp"
#include "logging/timestamp.hpp"

namespace sdc::logging {
namespace {

// --- timestamp codec -------------------------------------------------------

TEST(Timestamp, FormatKnownEpoch) {
  // 2017-07-03 16:40:00.000 UTC
  EXPECT_EQ(format_epoch_ms(1'499'100'000'000), "2017-07-03 16:40:00,000");
  EXPECT_EQ(format_epoch_ms(1'499'100'000'123), "2017-07-03 16:40:00,123");
  EXPECT_EQ(format_epoch_ms(0), "1970-01-01 00:00:00,000");
}

TEST(Timestamp, RoundTripRandomInstants) {
  for (std::int64_t base : {0LL, 1'499'100'000'000LL, 1'600'000'000'000LL}) {
    for (std::int64_t delta :
         {0LL, 1LL, 999LL, 86'399'999LL, 86'400'000LL, 31'536'000'000LL}) {
      const std::int64_t ms = base + delta;
      const auto parsed = parse_epoch_ms(format_epoch_ms(ms));
      ASSERT_TRUE(parsed.has_value()) << format_epoch_ms(ms);
      EXPECT_EQ(*parsed, ms);
    }
  }
}

TEST(Timestamp, RoundTripLeapDayAndYearBoundaries) {
  for (const char* text :
       {"2016-02-29 12:00:00,500", "2017-12-31 23:59:59,999",
        "2018-01-01 00:00:00,000", "2000-02-29 00:00:00,001"}) {
    const auto ms = parse_epoch_ms(text);
    ASSERT_TRUE(ms.has_value()) << text;
    EXPECT_EQ(format_epoch_ms(*ms), text);
  }
}

TEST(Timestamp, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_epoch_ms("").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-07-03").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017/07/03 16:40:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-07-03 16:40:00.000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-13-03 16:40:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-07-32 16:40:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-07-03 24:40:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-07-03 16:60:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-07-03 16:40:60,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-07-03 16:40:00,0ab").has_value());
  EXPECT_FALSE(parse_epoch_ms("20X7-07-03 16:40:00,000").has_value());
}

TEST(Timestamp, ParseRejectsImpossibleCalendarDates) {
  // Regression: days-from-civil arithmetic silently normalizes Feb 31
  // into early March, so these used to parse to a wrong (valid-looking)
  // epoch instead of being rejected.
  EXPECT_FALSE(parse_epoch_ms("2017-02-31 12:00:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-02-30 12:00:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-04-31 12:00:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-06-31 12:00:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-09-31 12:00:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-11-31 12:00:00,000").has_value());
  // Feb 29 exists only in leap years.
  EXPECT_FALSE(parse_epoch_ms("2017-02-29 12:00:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("1900-02-29 12:00:00,000").has_value());
  EXPECT_TRUE(parse_epoch_ms("2016-02-29 12:00:00,000").has_value());
  EXPECT_TRUE(parse_epoch_ms("2000-02-29 12:00:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-07-00 12:00:00,000").has_value());
  EXPECT_FALSE(parse_epoch_ms("2017-00-03 12:00:00,000").has_value());
}

TEST(Timestamp, ValidCivilDateTable) {
  EXPECT_TRUE(valid_civil_date(2017, 1, 31));
  EXPECT_TRUE(valid_civil_date(2017, 12, 31));
  EXPECT_TRUE(valid_civil_date(2017, 2, 28));
  EXPECT_FALSE(valid_civil_date(2017, 2, 29));
  EXPECT_TRUE(valid_civil_date(2016, 2, 29));
  EXPECT_FALSE(valid_civil_date(2016, 2, 30));
  EXPECT_FALSE(valid_civil_date(2100, 2, 29));  // century non-leap
  EXPECT_TRUE(valid_civil_date(2400, 2, 29));   // 400-year leap
  EXPECT_FALSE(valid_civil_date(2017, 0, 1));
  EXPECT_FALSE(valid_civil_date(2017, 13, 1));
  EXPECT_FALSE(valid_civil_date(2017, 4, 31));
  EXPECT_TRUE(valid_civil_date(2017, 4, 30));
}

TEST(Timestamp, FormatParseRoundTripProperty) {
  // format∘parse must be the identity over a deterministic sweep of
  // instants covering leap years, month lengths and day boundaries —
  // and every rendered (y, m, d) must satisfy valid_civil_date, so the
  // parser can never reject what the formatter produces.
  std::mt19937_64 rng(20170703);
  std::uniform_int_distribution<std::int64_t> instant(
      0, 4'102'444'800'000);  // 1970..2100
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t ms = instant(rng);
    const std::string text = format_epoch_ms(ms);
    const auto parsed = parse_epoch_ms(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, ms) << text;
    const auto year = std::stoll(text.substr(0, 4));
    const auto month = static_cast<unsigned>(std::stoul(text.substr(5, 2)));
    const auto day = static_cast<unsigned>(std::stoul(text.substr(8, 2)));
    EXPECT_TRUE(valid_civil_date(year, month, day)) << text;
  }
}

// --- record -----------------------------------------------------------------

TEST(Record, RenderMatchesLog4jLayout) {
  LogRecord record;
  record.epoch_ms = 1'499'100'000'123;
  record.level = Level::kInfo;
  record.logger = "org.apache.hadoop.yarn.Example";
  record.message = "hello world";
  EXPECT_EQ(record.render(),
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.Example: "
            "hello world");
}

TEST(Record, LevelNames) {
  EXPECT_EQ(level_name(Level::kDebug), "DEBUG");
  EXPECT_EQ(level_name(Level::kInfo), "INFO ");
  EXPECT_EQ(level_name(Level::kWarn), "WARN ");
  EXPECT_EQ(level_name(Level::kError), "ERROR");
}

// --- bundle ------------------------------------------------------------------

TEST(LogBundle, AppendAndQuery) {
  LogBundle bundle;
  EXPECT_FALSE(bundle.has_stream("a.log"));
  bundle.append("a.log", "line1");
  bundle.append("a.log", "line2");
  bundle.append("b.log", "other");
  EXPECT_TRUE(bundle.has_stream("a.log"));
  EXPECT_EQ(bundle.stream_count(), 2u);
  EXPECT_EQ(bundle.total_lines(), 3u);
  ASSERT_EQ(bundle.lines("a.log").size(), 2u);
  EXPECT_EQ(bundle.lines("a.log")[1], "line2");
  EXPECT_TRUE(bundle.lines("missing.log").empty());
}

TEST(LogBundle, StreamNamesSorted) {
  LogBundle bundle;
  bundle.append("z.log", "x");
  bundle.append("a.log", "x");
  bundle.append("m.log", "x");
  const auto names = bundle.stream_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a.log");
  EXPECT_EQ(names[2], "z.log");
}

TEST(LogBundle, DirectoryRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "sdc-logbundle-test";
  std::filesystem::remove_all(dir);
  LogBundle bundle;
  bundle.append("rm.log", "alpha");
  bundle.append("rm.log", "beta");
  bundle.append("nm-node01.cluster.log", "gamma");
  bundle.write_to_directory(dir);

  const LogBundle loaded = LogBundle::read_from_directory(dir);
  EXPECT_EQ(loaded.stream_count(), 2u);
  ASSERT_EQ(loaded.lines("rm.log").size(), 2u);
  EXPECT_EQ(loaded.lines("rm.log")[0], "alpha");
  EXPECT_EQ(loaded.lines("nm-node01.cluster.log")[0], "gamma");
  std::filesystem::remove_all(dir);
}

TEST(LogBundle, ReadMissingDirectoryThrows) {
  EXPECT_THROW(LogBundle::read_from_directory("/nonexistent/sdc-xyz"),
               std::runtime_error);
}

TEST(LogBundle, MergeAppendsOnCollision) {
  LogBundle a;
  a.append("x.log", "1");
  LogBundle b;
  b.append("x.log", "2");
  b.append("y.log", "3");
  a.merge(b);
  ASSERT_EQ(a.lines("x.log").size(), 2u);
  EXPECT_EQ(a.lines("x.log")[1], "2");
  EXPECT_EQ(a.lines("y.log").size(), 1u);
}

// --- logger -------------------------------------------------------------------

TEST(Logger, WritesRenderedLineAtWallClock) {
  LogBundle bundle;
  Logger logger(&bundle, "test.log", 1'499'100'000'000);
  logger.info(millis(1500), "a.b.C", "msg");
  ASSERT_EQ(bundle.lines("test.log").size(), 1u);
  EXPECT_EQ(bundle.lines("test.log")[0],
            "2017-07-03 16:40:01,500 INFO  a.b.C: msg");
}

TEST(Logger, ClockSkewShiftsTimestamps) {
  LogBundle bundle;
  Logger skewed(&bundle, "skew.log", 1'499'100'000'000, /*skew_ms=*/-250);
  skewed.info(millis(1000), "a.C", "msg");
  EXPECT_EQ(bundle.lines("skew.log")[0].substr(0, 23),
            "2017-07-03 16:40:00,750");
  EXPECT_EQ(skewed.wall_ms(millis(1000)), 1'499'100'000'750);
}

TEST(Logger, SubMillisecondTimesCollapse) {
  // Two events 400us apart must stamp the same millisecond — the
  // measurement floor of the whole analysis (paper §III-A).
  LogBundle bundle;
  Logger logger(&bundle, "t.log", 1'499'100'000'000);
  logger.info(micros(1200), "a.C", "first");
  logger.info(micros(1600), "a.C", "second");
  EXPECT_EQ(bundle.lines("t.log")[0].substr(0, 23),
            bundle.lines("t.log")[1].substr(0, 23));
}

}  // namespace
}  // namespace sdc::logging
