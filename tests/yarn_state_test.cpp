// Unit tests for the YARN state machines and their log-line rendering —
// the contract between the simulator and SDchecker's extractor.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "yarn/launch_model.hpp"
#include "yarn/scheduler.hpp"
#include "yarn/state_machine.hpp"

namespace sdc::yarn {
namespace {

// --- legality tables ----------------------------------------------------------

TEST(StateMachine, RmAppHappyPath) {
  StateMachine<RmAppState> sm(RmAppState::kNew, "RMAppImpl");
  sm.transition(RmAppState::kNewSaving);
  sm.transition(RmAppState::kSubmitted);
  sm.transition(RmAppState::kAccepted);
  sm.transition(RmAppState::kRunning);
  sm.transition(RmAppState::kFinalSaving);
  sm.transition(RmAppState::kFinished);
  EXPECT_EQ(sm.state(), RmAppState::kFinished);
}

TEST(StateMachine, RmAppIllegalJumpThrows) {
  StateMachine<RmAppState> sm(RmAppState::kNew, "RMAppImpl");
  EXPECT_THROW(sm.transition(RmAppState::kRunning), IllegalTransition);
  EXPECT_THROW(sm.transition(RmAppState::kFinished), IllegalTransition);
  EXPECT_EQ(sm.state(), RmAppState::kNew);  // unchanged after failure
}

TEST(StateMachine, RmAppFinishedIsTerminal) {
  StateMachine<RmAppState> sm(RmAppState::kFinished, "RMAppImpl");
  EXPECT_THROW(sm.transition(RmAppState::kNew), IllegalTransition);
}

TEST(StateMachine, RmContainerPaths) {
  // Normal: NEW -> ALLOCATED -> ACQUIRED -> RUNNING -> COMPLETED.
  StateMachine<RmContainerState> sm(RmContainerState::kNew, "RMContainerImpl");
  sm.transition(RmContainerState::kAllocated);
  sm.transition(RmContainerState::kAcquired);
  sm.transition(RmContainerState::kRunning);
  sm.transition(RmContainerState::kCompleted);
  // Never-used (SPARK-21562): ALLOCATED -> RELEASED is legal.
  StateMachine<RmContainerState> unused(RmContainerState::kAllocated,
                                        "RMContainerImpl");
  unused.transition(RmContainerState::kReleased);
  // Acquired-then-reclaimed: ACQUIRED -> RELEASED is legal.
  StateMachine<RmContainerState> reclaimed(RmContainerState::kAcquired,
                                           "RMContainerImpl");
  reclaimed.transition(RmContainerState::kReleased);
}

TEST(StateMachine, RmContainerIllegalEdges) {
  EXPECT_FALSE(is_legal_transition(RmContainerState::kNew,
                                   RmContainerState::kAcquired));
  EXPECT_FALSE(is_legal_transition(RmContainerState::kAllocated,
                                   RmContainerState::kRunning));
  EXPECT_FALSE(is_legal_transition(RmContainerState::kCompleted,
                                   RmContainerState::kRunning));
  EXPECT_FALSE(is_legal_transition(RmContainerState::kReleased,
                                   RmContainerState::kAllocated));
}

TEST(StateMachine, NmContainerHappyPath) {
  StateMachine<NmContainerState> sm(NmContainerState::kNew, "ContainerImpl");
  sm.transition(NmContainerState::kLocalizing);
  sm.transition(NmContainerState::kScheduled);
  sm.transition(NmContainerState::kRunning);
  sm.transition(NmContainerState::kExitedWithSuccess);
  sm.transition(NmContainerState::kDone);
}

TEST(StateMachine, NmContainerCannotSkipLocalization) {
  EXPECT_FALSE(is_legal_transition(NmContainerState::kNew,
                                   NmContainerState::kScheduled));
  EXPECT_FALSE(is_legal_transition(NmContainerState::kLocalizing,
                                   NmContainerState::kRunning));
}

// --- event names ----------------------------------------------------------------

TEST(StateMachine, AttemptRegisteredEventName) {
  EXPECT_EQ(rm_app_event(RmAppState::kAccepted, RmAppState::kRunning),
            "ATTEMPT_REGISTERED");
  EXPECT_EQ(rm_app_event(RmAppState::kSubmitted, RmAppState::kAccepted),
            "APP_ACCEPTED");
}

// --- rendered log lines -----------------------------------------------------------

TEST(StateMachine, RenderRmAppTransition) {
  EXPECT_EQ(render_rm_app_transition("application_1499100000000_0001",
                                     RmAppState::kSubmitted,
                                     RmAppState::kAccepted),
            "application_1499100000000_0001 State change from SUBMITTED to "
            "ACCEPTED on event = APP_ACCEPTED");
}

TEST(StateMachine, RenderRmContainerTransition) {
  EXPECT_EQ(render_rm_container_transition(
                "container_1499100000000_0001_01_000002",
                RmContainerState::kNew, RmContainerState::kAllocated),
            "container_1499100000000_0001_01_000002 Container Transitioned "
            "from NEW to ALLOCATED");
}

TEST(StateMachine, RenderNmContainerTransition) {
  EXPECT_EQ(render_nm_container_transition(
                "container_1499100000000_0001_01_000002",
                NmContainerState::kLocalizing, NmContainerState::kScheduled),
            "Container container_1499100000000_0001_01_000002 transitioned "
            "from LOCALIZING to SCHEDULED");
}

// --- launch model -------------------------------------------------------------------

TEST(LaunchModel, InstanceCodes) {
  EXPECT_EQ(instance_code(InstanceType::kSparkDriver), "spm");
  EXPECT_EQ(instance_code(InstanceType::kSparkExecutor), "spe");
  EXPECT_EQ(instance_code(InstanceType::kMrMaster), "mrm");
  EXPECT_EQ(instance_code(InstanceType::kMrMapTask), "mrsm");
  EXPECT_EQ(instance_code(InstanceType::kMrReduceTask), "mrsr");
}

TEST(LaunchModel, SparkMediansNearPaperFig9a) {
  LaunchModel model;
  Rng rng(31);
  SampleSet spark;
  for (int i = 0; i < 4000; ++i) {
    spark.add(to_seconds(model.sample(InstanceType::kSparkExecutor,
                                      /*docker=*/false, 1.0, 1.0, rng)));
  }
  EXPECT_NEAR(spark.median(), 0.70, 0.08);  // ~700 ms median
}

TEST(LaunchModel, MapReduceSlowerThanSpark) {
  LaunchModel model;
  EXPECT_GT(model.base_median(InstanceType::kMrMaster),
            model.base_median(InstanceType::kSparkDriver));
  EXPECT_GT(model.base_median(InstanceType::kMrMapTask),
            model.base_median(InstanceType::kSparkExecutor));
}

TEST(LaunchModel, DockerOverheadNearPaperFig9b) {
  LaunchModel model;
  Rng rng(37);
  SampleSet plain;
  SampleSet docker;
  for (int i = 0; i < 6000; ++i) {
    plain.add(to_seconds(
        model.sample(InstanceType::kSparkExecutor, false, 1.0, 1.0, rng)));
    docker.add(to_seconds(
        model.sample(InstanceType::kSparkExecutor, true, 1.0, 1.0, rng)));
  }
  const double median_overhead = docker.median() - plain.median();
  const double p95_overhead = docker.p95() - plain.p95();
  EXPECT_NEAR(median_overhead, 0.35, 0.10);  // +350 ms median
  EXPECT_NEAR(p95_overhead, 0.66, 0.30);     // +658 ms p95
  EXPECT_GT(p95_overhead, median_overhead);  // long-tail effect
}

TEST(LaunchModel, CpuInterferenceStretchesLaunch) {
  LaunchModel model;
  Rng rng1(41);
  Rng rng2(41);
  const SimDuration idle =
      model.sample(InstanceType::kSparkDriver, false, 1.0, 1.0, rng1);
  const SimDuration loaded =
      model.sample(InstanceType::kSparkDriver, false, 2.5, 1.0, rng2);
  EXPECT_NEAR(static_cast<double>(loaded) / static_cast<double>(idle), 2.5,
              1e-9);
}

}  // namespace
}  // namespace sdc::yarn
