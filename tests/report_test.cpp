// Tests for the aggregate report: folding rules, rendering, CSV.
#include <gtest/gtest.h>

#include "sdchecker/report.hpp"

namespace sdc::checker {
namespace {

Delays make_delays(std::int64_t total_ms) {
  Delays delays;
  delays.app = ApplicationId{1, 1};
  delays.total = total_ms;
  delays.am = total_ms / 3;
  delays.driver = total_ms / 4;
  delays.executor = total_ms / 2;
  delays.in_app = *delays.driver + *delays.executor;
  delays.out_app = *delays.total - *delays.in_app;
  delays.alloc = 1500;
  ContainerDelays am;
  am.id = ContainerId{{1, 1}, 1, 1};
  am.is_am = true;
  am.acquisition = 10;
  am.localization = 600;
  am.launching = 700;
  ContainerDelays worker;
  worker.id = ContainerId{{1, 1}, 1, 2};
  worker.acquisition = 120;
  worker.localization = 650;
  worker.queuing = 80;
  worker.launching = 720;
  delays.containers.push_back(am);
  delays.containers.push_back(worker);
  return delays;
}

TEST(AggregateReport, FoldsPerAppAndPerContainerMetrics) {
  AggregateReport report;
  report.add(make_delays(10'000));
  report.add(make_delays(20'000));
  EXPECT_EQ(report.app_count(), 2u);
  EXPECT_EQ(report.total.size(), 2u);
  EXPECT_NEAR(report.total.mean(), 15.0, 1e-9);
  // Worker containers only in the per-container sets: 1 worker per app.
  EXPECT_EQ(report.acquisition.size(), 2u);
  EXPECT_NEAR(report.acquisition.mean(), 0.120, 1e-9);
  EXPECT_EQ(report.queuing.size(), 2u);
}

TEST(AggregateReport, AmContainerExcludedFromPerContainerStats) {
  AggregateReport report;
  report.add(make_delays(10'000));
  // AM acquisition was 10 ms, worker 120 ms; only the worker counts.
  EXPECT_DOUBLE_EQ(report.acquisition.min(), 0.120);
}

TEST(AggregateReport, MissingFieldsSkipped) {
  AggregateReport report;
  Delays sparse;
  sparse.total = 5000;  // everything else missing
  report.add(sparse);
  EXPECT_EQ(report.total.size(), 1u);
  EXPECT_EQ(report.driver.size(), 0u);
  EXPECT_EQ(report.alloc.size(), 0u);
}

TEST(AggregateReport, TextRenderingHandlesEmptyMetrics) {
  AggregateReport report;
  Delays sparse;
  sparse.total = 5000;
  report.add(sparse);
  const std::string text = report.render_text();
  EXPECT_NE(text.find("total"), std::string::npos);
  EXPECT_NE(text.find("5.000s"), std::string::npos);
  EXPECT_NE(text.find("-"), std::string::npos);  // empty metrics dashed
}

TEST(AggregateReport, CsvIsParseable) {
  AggregateReport report;
  report.add(make_delays(12'345));
  const std::string csv = report.render_csv();
  EXPECT_EQ(csv.find("metric,n,median_s,p95_s,mean_s,stddev_s\n"), 0u);
  EXPECT_NE(csv.find("total,1,12.3450"), std::string::npos);
  // One line per metric plus header.
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + report.metrics().size());
}

TEST(AggregateReport, MetricsListStable) {
  AggregateReport report;
  const auto metrics = report.metrics();
  ASSERT_EQ(metrics.size(), 15u);
  EXPECT_EQ(metrics.front().first, "total");
  EXPECT_EQ(metrics.back().first, "exec-idle");
}

TEST(FmtHelpers, Rendering) {
  EXPECT_EQ(fmt::secs(17.2), "17.20s");
  EXPECT_EQ(fmt::pct(0.413), "41.3%");
}

}  // namespace
}  // namespace sdc::checker
