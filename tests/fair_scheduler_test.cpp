// Tests for the Fair Scheduler: deficit ordering, AM priority, and the
// end-to-end fairness effect on per-app allocation delay.
#include <gtest/gtest.h>

#include "cluster/node.hpp"
#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"
#include "yarn/scheduler.hpp"

namespace sdc::yarn {
namespace {

const ApplicationId kAppA{1'499'100'000'000, 1};
const ApplicationId kAppB{1'499'100'000'000, 2};

TEST(FairScheduler, DeficitRoundRobinAlternatesApps) {
  FairScheduler scheduler;
  scheduler.enqueue(PendingAsk{kAppA, {1, 128}, 6, InstanceType::kMrMapTask,
                               false});
  scheduler.enqueue(PendingAsk{kAppB, {1, 128}, 6, InstanceType::kMrMapTask,
                               false});
  cluster::Node node(NodeId{1}, cluster::kNodeCapacity);
  const auto grants = scheduler.assign_on_heartbeat(node, 6, seconds(10));
  ASSERT_EQ(grants.size(), 6u);
  // FIFO would hand all 6 to A; fair share splits them 3/3.
  std::int64_t to_a = 0;
  for (const Grant& grant : grants) {
    if (grant.app == kAppA) ++to_a;
  }
  EXPECT_EQ(to_a, 3);
  EXPECT_EQ(scheduler.granted_to(kAppA), 3);
  EXPECT_EQ(scheduler.granted_to(kAppB), 3);
}

TEST(FairScheduler, AmAsksJumpTheLine) {
  FairScheduler scheduler;
  scheduler.enqueue(PendingAsk{kAppA, {1, 128}, 5, InstanceType::kMrMapTask,
                               false});
  scheduler.enqueue(PendingAsk{kAppB, {1, 1024}, 1, InstanceType::kSparkDriver,
                               true});
  cluster::Node node(NodeId{1}, cluster::kNodeCapacity);
  const auto grants = scheduler.assign_on_heartbeat(node, 1, seconds(10));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_TRUE(grants[0].am);
  EXPECT_EQ(grants[0].app, kAppB);
}

TEST(FairScheduler, RespectsLocalityWait) {
  FairScheduler scheduler;
  PendingAsk waiting{kAppA, {1, 128}, 1, InstanceType::kMrMapTask, false};
  waiting.eligible_at = seconds(100);
  scheduler.enqueue(waiting);
  cluster::Node node(NodeId{1}, cluster::kNodeCapacity);
  EXPECT_TRUE(scheduler.assign_on_heartbeat(node, 8, seconds(1)).empty());
  EXPECT_EQ(scheduler.assign_on_heartbeat(node, 8, seconds(100)).size(), 1u);
}

TEST(FairScheduler, EndToEndSchedulesSparkJobs) {
  harness::ScenarioConfig scenario;
  scenario.seed = 1401;
  scenario.yarn.scheduler = SchedulerKind::kFair;
  for (int i = 0; i < 6; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 6 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  ASSERT_EQ(result.jobs.size(), 6u);
  const auto analysis = checker::SdChecker().analyze(result.logs);
  for (const auto& [app, delays] : analysis.delays) {
    ASSERT_TRUE(delays.total && delays.alloc) << app.str();
    EXPECT_EQ(*delays.in_app + *delays.out_app, *delays.total);
  }
  EXPECT_TRUE(analysis.anomalies.empty());
}

TEST(FairScheduler, InterleavesSmallTenantBehindHeavyBacklog) {
  // A heavy MR job floods the queue with 3000 same-shape maps; a small MR
  // job (40 maps) arrives right after.  FIFO drains the backlog first;
  // deficit round-robin interleaves the small tenant, so its maps are
  // fully allocated far earlier.  (Large-container asks are a different
  // story: without YARN-style reservations they can starve behind
  // backfilling small tasks under *any* of these policies.)
  const auto victim_all_allocated = [](SchedulerKind kind) {
    harness::ScenarioConfig scenario;
    scenario.seed = 1402;
    scenario.yarn.scheduler = kind;
    scenario.extra_horizon = seconds(8 * 3600);
    harness::MrSubmissionPlan heavy;
    heavy.at = 0;
    heavy.app.name = "mr-heavy";
    heavy.app.num_maps = 3000;
    heavy.app.num_reduces = 0;
    heavy.app.task_resource = {1, 1024};
    heavy.app.map_duration_median = seconds(30);
    scenario.mr_jobs.push_back(std::move(heavy));
    harness::MrSubmissionPlan victim;
    victim.at = seconds(3);
    victim.app.name = "mr-victim";
    victim.app.num_maps = 40;
    victim.app.num_reduces = 0;
    victim.app.task_resource = {1, 1024};
    victim.app.map_duration_median = seconds(10);
    scenario.mr_jobs.push_back(std::move(victim));
    const auto sim = harness::run_scenario(scenario);
    const auto analysis = checker::SdChecker().analyze(sim.logs);
    for (const auto& job : sim.jobs) {
      if (job.name != "mr-victim") continue;
      const auto& timeline = analysis.timelines.at(job.app);
      const auto submitted = timeline.ts(checker::EventKind::kAppSubmitted);
      const auto last_alloc =
          timeline.max_worker_ts(checker::EventKind::kContainerAllocated);
      if (submitted && last_alloc) {
        return static_cast<double>(*last_alloc - *submitted) / 1000.0;
      }
    }
    return -1.0;
  };
  const double fifo_s = victim_all_allocated(SchedulerKind::kCapacity);
  const double fair_s = victim_all_allocated(SchedulerKind::kFair);
  ASSERT_GT(fifo_s, 0.0);
  ASSERT_GT(fair_s, 0.0);
  EXPECT_LT(fair_s, fifo_s * 0.5);
}

}  // namespace
}  // namespace sdc::yarn
