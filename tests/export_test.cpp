// Tests for the plot-ready CSV exports.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/scenario.hpp"
#include "sdchecker/export.hpp"
#include "workloads/tpch.hpp"

namespace sdc::checker {
namespace {

AnalysisResult analyzed_run(int jobs = 3) {
  harness::ScenarioConfig scenario;
  scenario.seed = 61;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 8 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 2);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return SdChecker().analyze(harness::run_scenario(scenario).logs);
}

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  for (char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

TEST(Export, DelaysCsvOneRowPerApp) {
  const auto analysis = analyzed_run(3);
  const std::string csv = delays_csv(analysis);
  EXPECT_EQ(count_lines(csv), 1u + analysis.delays.size());
  EXPECT_EQ(csv.find("app,total_ms,am_ms"), 0u);
  EXPECT_NE(csv.find("application_1499100000000_0001,"), std::string::npos);
  // Fully-populated rows have no empty cells: count commas per row = 10.
  std::istringstream stream(csv);
  std::string row;
  std::getline(stream, row);  // header
  while (std::getline(stream, row)) {
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 10) << row;
    EXPECT_EQ(row.find(",,"), std::string::npos) << row;
  }
}

TEST(Export, ContainersCsvCoversEveryContainer) {
  const auto analysis = analyzed_run(2);
  const std::string csv = containers_csv(analysis);
  std::size_t expected = 0;
  for (const auto& [app, delays] : analysis.delays) {
    expected += delays.containers.size();
  }
  EXPECT_EQ(count_lines(csv), 1u + expected);
  EXPECT_NE(csv.find(",1,"), std::string::npos);  // the AM rows
}

TEST(Export, EventsCsvHasTable1Numbers) {
  const auto analysis = analyzed_run(1);
  const std::string csv = events_csv(analysis);
  EXPECT_EQ(csv.find("app,container,table1,event,epoch_ms"), 0u);
  EXPECT_NE(csv.find(",1,SUBMITTED,"), std::string::npos);
  EXPECT_NE(csv.find(",14,FIRST_TASK,"), std::string::npos);
  EXPECT_NE(csv.find(",9,DRV_FIRST_LOG,"), std::string::npos);
}

TEST(Export, CdfCsvMonotone) {
  SampleSet samples;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) samples.add(rng.uniform(0, 50));
  const std::string csv = cdf_csv(samples, 20);
  EXPECT_EQ(count_lines(csv), 21u);
  std::istringstream stream(csv);
  std::string row;
  std::getline(stream, row);
  double prev_value = -1;
  double prev_p = -1;
  while (std::getline(stream, row)) {
    const auto comma = row.find(',');
    const double value = std::stod(row.substr(0, comma));
    const double p = std::stod(row.substr(comma + 1));
    EXPECT_GE(value, prev_value);
    EXPECT_GE(p, prev_p);
    prev_value = value;
    prev_p = p;
  }
  EXPECT_DOUBLE_EQ(prev_p, 1.0);
}

TEST(Export, EmptyAnalysisGivesHeadersOnly) {
  AnalysisResult empty;
  EXPECT_EQ(count_lines(delays_csv(empty)), 1u);
  EXPECT_EQ(count_lines(containers_csv(empty)), 1u);
  EXPECT_EQ(count_lines(events_csv(empty)), 1u);
}

}  // namespace
}  // namespace sdc::checker
