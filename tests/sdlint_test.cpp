// sdlint: one assertion per check against the seeded-violation corpus,
// a clean-tree zero-findings run, and regression tests for the
// emitter/extractor reconciliations (real miner on rendered lines).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/log_contract.hpp"
#include "obs/metric_catalog.hpp"
#include "sdchecker/corpus_mutator.hpp"
#include "sdchecker/extractor.hpp"
#include "sdchecker/miner.hpp"
#include "sdlint/contract_check.hpp"
#include "sdlint/coverage_check.hpp"
#include "sdlint/diag_check.hpp"
#include "sdlint/doc_sources.hpp"
#include "sdlint/findings.hpp"
#include "sdlint/fixtures.hpp"
#include "sdlint/machine_check.hpp"
#include "sdlint/metrics_check.hpp"
#include "sdlint/runner.hpp"
#include "spark/log_contract.hpp"
#include "workloads/log_contract.hpp"
#include "yarn/log_contract.hpp"
#include "yarn/state_machine.hpp"

namespace sdc {
namespace {

using lint::Finding;

std::vector<Finding> run_fixture(std::string_view name) {
  for (const lint::Fixture& fixture : lint::fixtures()) {
    if (fixture.name == name) return fixture.run();
  }
  ADD_FAILURE() << "no fixture named " << name;
  return {};
}

// --- the real tree is clean --------------------------------------------------

TEST(SdlintClean, RealTablesProduceZeroFindings) {
  const lint::Report report = lint::run_all_checks();
  for (const Finding& finding : report.findings) {
    ADD_FAILURE() << finding.check << " " << finding.subject << ": "
                  << finding.detail;
  }
  EXPECT_TRUE(report.clean());
}

TEST(SdlintClean, SelftestPasses) {
  EXPECT_TRUE(lint::run_selftest().empty());
}

TEST(SdlintClean, JsonReportOfCleanRunHasZeroCount) {
  const lint::Report report = lint::run_all_checks();
  EXPECT_NE(lint::findings_to_json(report.findings).find("\"count\":0"),
            std::string::npos);
}

// --- one assertion per machine check -----------------------------------------

TEST(SdlintMachine, UnreachableStateFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-unreachable-state"),
                                    "machine.unreachable"));
}

TEST(SdlintMachine, DeadTransitionFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-dead-transition"),
                                    "machine.dead-transition"));
}

TEST(SdlintMachine, NondeterministicTransitionFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-nondeterministic"),
                                    "machine.nondeterministic"));
}

TEST(SdlintMachine, DuplicateTransitionFires) {
  EXPECT_TRUE(lint::any_with_prefix(
      run_fixture("machine-duplicate-transition"),
      "machine.duplicate-transition"));
}

TEST(SdlintMachine, TerminalWithOutgoingEdgeFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-terminal-outgoing"),
                                    "machine.terminal-outgoing"));
}

TEST(SdlintMachine, DeadEndStateFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-dead-end"),
                                    "machine.dead-end"));
}

TEST(SdlintMachine, UnknownEmitsNameFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-unknown-event"),
                                    "machine.unknown-event"));
}

// --- one assertion per contract check ----------------------------------------

TEST(SdlintContract, FormatDriftFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-format-drift"),
                                    "contract.no-match"));
}

TEST(SdlintContract, AmbiguousLineFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-ambiguous-line"),
                                    "contract.ambiguous"));
}

TEST(SdlintContract, WrongEventFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-wrong-event"),
                                    "contract.wrong-event"));
}

TEST(SdlintContract, MissingIdFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-missing-id"),
                                    "contract.no-id"));
}

TEST(SdlintContract, NoisyInformationalLineFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-noisy-info-line"),
                                    "contract.noisy"));
}

TEST(SdlintContract, OrphanExtractorRuleFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-orphan-rule"),
                                    "contract.dead-rule"));
}

TEST(SdlintContract, UnknownLoggerClassFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-unknown-class"),
                                    "contract.unknown-class"));
}

TEST(SdlintCoverage, MissingKindFires) {
  const std::vector<Finding> findings =
      run_fixture("coverage-missing-kind");
  EXPECT_TRUE(lint::any_with_prefix(findings, "coverage.missing-kind"));
  // Dropping Spark loses at minimum REGISTER and FIRST_TASK.
  const auto subject = [&](std::string_view name) {
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding& f) { return f.subject == name; });
  };
  EXPECT_TRUE(subject("DRV_REGISTER"));
  EXPECT_TRUE(subject("FIRST_TASK"));
}

// --- one assertion per metrics check -----------------------------------------

TEST(SdlintMetrics, DuplicateSpecFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("metrics-duplicate-spec"),
                                    "metrics.duplicate-spec"));
}

TEST(SdlintMetrics, UndocumentedCatalogRowFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("metrics-undocumented"),
                                    "metrics.undocumented"));
}

TEST(SdlintMetrics, StaleDocRowFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("metrics-stale-doc"),
                                    "metrics.stale-doc"));
}

TEST(SdlintMetrics, DocDriftFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("metrics-doc-drift"),
                                    "metrics.doc-drift"));
}

TEST(SdlintMetrics, UnknownInstrumentFires) {
  EXPECT_TRUE(lint::any_with_prefix(
      run_fixture("metrics-unknown-instrument"),
      "metrics.unknown-instrument"));
}

TEST(SdlintMetrics, KindMismatchFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("metrics-kind-mismatch"),
                                    "metrics.kind-mismatch"));
}

TEST(SdlintMetrics, DelayUnboundFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("metrics-delay-unbound"),
                                    "metrics.delay-unbound"));
}

TEST(SdlintMetrics, MissingDocFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("metrics-doc-missing"),
                                    "metrics.doc-missing"));
}

TEST(SdlintMetrics, CommittedDocTableIsExactlyTheRenderedCatalog) {
  // The doc table is generated, not hand-maintained: the committed text
  // between the markers must be byte-identical to the renderer output.
  const lint::DocSection section = lint::load_doc_section(
      "OBSERVABILITY.md", lint::kMetricTableBegin, lint::kMetricTableEnd);
  ASSERT_TRUE(section.file_found);
  ASSERT_TRUE(section.section_found);
  EXPECT_EQ(section.text, obs::render_metric_table());
}

TEST(SdlintMetrics, FindMetricSpecMatchesFamiliesByPrefix) {
  const obs::MetricSpec* exact = obs::find_metric_spec("mine.lines");
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->name, "mine.lines");
  const obs::MetricSpec* family =
      obs::find_metric_spec("mine.diagnostics.rotation-gap");
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->name, "mine.diagnostics.<kind>");
  EXPECT_EQ(obs::find_metric_spec("mine.diagnostics."), nullptr);
  EXPECT_EQ(obs::find_metric_spec("no.such.metric"), nullptr);
}

TEST(SdlintMetrics, CatalogRegistrationRejectsKindMismatch) {
  EXPECT_THROW((void)obs::catalog_gauge(obs::metric::kMineLines),
               std::logic_error);
  EXPECT_THROW((void)obs::catalog_counter(obs::metric::kMineDiagnostics),
               std::logic_error);  // family registered without a suffix
}

// --- one assertion per diag check --------------------------------------------

TEST(SdlintDiag, UnnamedKindFires) {
  EXPECT_TRUE(
      lint::any_with_prefix(run_fixture("diag-unnamed"), "diag.unnamed"));
}

TEST(SdlintDiag, DuplicateNameFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("diag-duplicate-name"),
                                    "diag.duplicate-name"));
}

TEST(SdlintDiag, BadSeverityFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("diag-bad-severity"),
                                    "diag.bad-severity"));
}

TEST(SdlintDiag, UnmappedKindFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("diag-unmapped-kind"),
                                    "diag.unmapped-kind"));
}

TEST(SdlintDiag, StaleExemptionFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("diag-stale-exemption"),
                                    "diag.stale-exemption"));
}

TEST(SdlintDiag, UndocumentedKindFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("diag-undocumented"),
                                    "diag.undocumented"));
}

TEST(SdlintDiag, StaleDocRowFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("diag-stale-doc"),
                                    "diag.stale-doc"));
}

TEST(SdlintDiag, DocDriftFires) {
  EXPECT_TRUE(
      lint::any_with_prefix(run_fixture("diag-doc-drift"), "diag.doc-drift"));
}

TEST(SdlintDiag, MissingDocFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("diag-doc-missing"),
                                    "diag.doc-missing"));
}

TEST(SdlintDiag, EveryRealKindIsMutatorCoveredOrExempt) {
  // The positive form of diag.unmapped-kind over the real enum: each of
  // the seven kinds is reachable by fuzzing or carries a reason why not.
  for (const lint::DiagKindRow& row : lint::real_diag_kind_rows()) {
    EXPECT_NE(row.mutation_classes.empty(), !row.runtime_only.has_value())
        << row.name;
  }
}

TEST(SdlintDiag, MutationClassesForInvertsExpectedDiagnostic) {
  for (const checker::MutationClass cls : checker::all_mutation_classes()) {
    const auto expected = checker::expected_diagnostic(cls);
    if (!expected) continue;
    const auto classes = checker::mutation_classes_for(*expected);
    EXPECT_NE(std::find(classes.begin(), classes.end(), cls), classes.end())
        << checker::mutation_class_name(cls);
  }
}

// --- doc_sources parsing -----------------------------------------------------

TEST(SdlintDocSources, ParseMarkdownTableDropsSeparatorAndTrims) {
  const auto rows = lint::parse_markdown_table(
      "prose before\n"
      "| a | b |\n"
      "|---|---|\n"
      "| `x` |  y  |\n"
      "not a row\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"`x`", "y"}));
  EXPECT_EQ(lint::strip_backticks(rows[1][0]), "x");
  EXPECT_EQ(lint::strip_backticks("plain"), "plain");
}

TEST(SdlintDocSources, MissingMarkersReportedNotSilent) {
  const lint::DocSection section = lint::load_doc_section(
      "OBSERVABILITY.md", "<!-- NO SUCH MARKER -->", "<!-- NOR THIS -->");
  EXPECT_TRUE(section.file_found);
  EXPECT_FALSE(section.section_found);
}

// --- introspection surfaces --------------------------------------------------

TEST(SdlintIntrospection, ThreeMachinesAreRegistered) {
  const auto machines = yarn::machine_descriptors();
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0].name, "RMAppImpl");
  EXPECT_EQ(machines[1].name, "RMContainerImpl");
  EXPECT_EQ(machines[2].name, "ContainerImpl");
}

TEST(SdlintIntrospection, RenderTemplateLeavesUnknownSlotsVerbatim) {
  const std::string out = contract::render_template(
      "keep {this} but fill {that}", {{"that", "X"}});
  EXPECT_EQ(out, "keep {this} but fill X");
}

TEST(SdlintIntrospection, CollectPlaceholdersFindsAllSlots) {
  const auto slots =
      contract::collect_placeholders("{a} then {b_c} not {a}");
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0], "a");
  EXPECT_EQ(slots[1], "b_c");
  EXPECT_EQ(slots[2], "a");
}

TEST(SdlintIntrospection, MatchingRulesIsExactlyOneForStartAllo) {
  const auto rules = checker::matching_rules(
      "YarnAllocator",
      "SDC START_ALLO requesting 4 executor containers, each "
      "<memory:1024, vCores:1>");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0]->emits, checker::EventKind::kStartAllo);
}

TEST(SdlintIntrospection, ComposedCorpusMinesAllFourteenTable1Kinds) {
  // The coverage check passing implies this, but assert the positive
  // form directly: compose, mine, count distinct Table-I kinds.
  std::vector<Finding> findings;
  const std::span<const contract::MilestoneSpec> groups[] = {
      yarn::yarn_milestones(), spark::spark_milestones(),
      workloads::mr_milestones()};
  const auto corpus =
      lint::compose_corpus(yarn::machine_descriptors(), groups, findings);
  EXPECT_TRUE(findings.empty());
  const checker::LogMiner miner{{.threads = 1}};
  std::vector<bool> seen(15, false);
  for (const auto& stream : corpus) {
    for (const auto& event :
         miner.mine_stream(stream.name, stream.lines).events) {
      const std::int32_t number = checker::table1_number(event.kind);
      if (number > 0) seen[static_cast<std::size_t>(number)] = true;
    }
  }
  for (std::int32_t number = 1; number <= 14; ++number) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(number)])
        << "Table I message " << number << " not mined";
  }
}

// --- register-phrase reconciliation regressions ------------------------------
// The extractor once let both driver classes match both frameworks'
// register phrasings, which made each cross pairing a dead pattern and
// double-counted lines mentioning both.  The rules are now split
// per-framework; these tests pin that with the real miner on rendered
// sample lines.

std::string log4j(std::string_view clazz, std::string_view message) {
  return "2017-07-03 16:40:00,123 INFO  " + std::string(clazz) + ": " +
         std::string(message);
}

TEST(RegisterPhraseRegression, SparkLineExtractsExactlyOneRegister) {
  const checker::LogMiner miner;
  const auto mined = miner.mine_stream(
      "driver.log",
      std::vector<std::string>{
          log4j(spark::kAmClass, "ApplicationAttemptId: "
                                 "appattempt_1499100000000_0001_000001"),
          log4j(spark::kAmClass, std::string(
                                     spark::kDriverRegisterLine.format))});
  const auto registers = std::count_if(
      mined.events.begin(), mined.events.end(), [](const auto& e) {
        return e.kind == checker::EventKind::kDriverRegister;
      });
  EXPECT_EQ(registers, 1);
}

TEST(RegisterPhraseRegression, MrLineExtractsExactlyOneRegister) {
  const checker::LogMiner miner;
  const auto mined = miner.mine_stream(
      "mram.log",
      std::vector<std::string>{
          log4j(workloads::kMrAmClass,
                "Created MRAppMaster for application "
                "appattempt_1499100000000_0001_000001"),
          log4j(workloads::kMrAmClass,
                std::string(workloads::kMrAmRegister.format))});
  const auto registers = std::count_if(
      mined.events.begin(), mined.events.end(), [](const auto& e) {
        return e.kind == checker::EventKind::kDriverRegister;
      });
  EXPECT_EQ(registers, 1);
}

TEST(RegisterPhraseRegression, CrossFrameworkPhrasesAreDeadPatterns) {
  // The MR phrasing under the Spark class (and vice versa) must not
  // extract: each framework emits only its own phrasing, so the old
  // cross pairings were unreachable patterns sdlint now forbids.
  EXPECT_TRUE(checker::matching_rules("ApplicationMaster",
                                      "Registering with the ResourceManager")
                  .empty());
  EXPECT_TRUE(checker::matching_rules("MRAppMaster",
                                      "Registering the ApplicationMaster "
                                      "with the ResourceManager")
                  .empty());
}

TEST(RegisterPhraseRegression, BothPhrasesInOneLineCountOnce) {
  // A pathological line containing both phrasings must produce exactly
  // one event, not two (the old OR-of-phrases risked ambiguity).
  const auto rules = checker::matching_rules(
      "ApplicationMaster",
      "Registering the ApplicationMaster with the ResourceManager after "
      "Registering with the ResourceManager retry");
  EXPECT_EQ(rules.size(), 1u);
}

}  // namespace
}  // namespace sdc
