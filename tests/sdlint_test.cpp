// sdlint: one assertion per check against the seeded-violation corpus,
// a clean-tree zero-findings run, and regression tests for the
// emitter/extractor reconciliations (real miner on rendered lines).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/log_contract.hpp"
#include "sdchecker/extractor.hpp"
#include "sdchecker/miner.hpp"
#include "sdlint/contract_check.hpp"
#include "sdlint/coverage_check.hpp"
#include "sdlint/findings.hpp"
#include "sdlint/fixtures.hpp"
#include "sdlint/machine_check.hpp"
#include "sdlint/runner.hpp"
#include "spark/log_contract.hpp"
#include "workloads/log_contract.hpp"
#include "yarn/log_contract.hpp"
#include "yarn/state_machine.hpp"

namespace sdc {
namespace {

using lint::Finding;

std::vector<Finding> run_fixture(std::string_view name) {
  for (const lint::Fixture& fixture : lint::fixtures()) {
    if (fixture.name == name) return fixture.run();
  }
  ADD_FAILURE() << "no fixture named " << name;
  return {};
}

// --- the real tree is clean --------------------------------------------------

TEST(SdlintClean, RealTablesProduceZeroFindings) {
  const lint::Report report = lint::run_all_checks();
  for (const Finding& finding : report.findings) {
    ADD_FAILURE() << finding.check << " " << finding.subject << ": "
                  << finding.detail;
  }
  EXPECT_TRUE(report.clean());
}

TEST(SdlintClean, SelftestPasses) {
  EXPECT_TRUE(lint::run_selftest().empty());
}

TEST(SdlintClean, JsonReportOfCleanRunHasZeroCount) {
  const lint::Report report = lint::run_all_checks();
  EXPECT_NE(lint::findings_to_json(report.findings).find("\"count\":0"),
            std::string::npos);
}

// --- one assertion per machine check -----------------------------------------

TEST(SdlintMachine, UnreachableStateFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-unreachable-state"),
                                    "machine.unreachable"));
}

TEST(SdlintMachine, DeadTransitionFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-dead-transition"),
                                    "machine.dead-transition"));
}

TEST(SdlintMachine, NondeterministicTransitionFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-nondeterministic"),
                                    "machine.nondeterministic"));
}

TEST(SdlintMachine, DuplicateTransitionFires) {
  EXPECT_TRUE(lint::any_with_prefix(
      run_fixture("machine-duplicate-transition"),
      "machine.duplicate-transition"));
}

TEST(SdlintMachine, TerminalWithOutgoingEdgeFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-terminal-outgoing"),
                                    "machine.terminal-outgoing"));
}

TEST(SdlintMachine, DeadEndStateFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-dead-end"),
                                    "machine.dead-end"));
}

TEST(SdlintMachine, UnknownEmitsNameFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("machine-unknown-event"),
                                    "machine.unknown-event"));
}

// --- one assertion per contract check ----------------------------------------

TEST(SdlintContract, FormatDriftFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-format-drift"),
                                    "contract.no-match"));
}

TEST(SdlintContract, AmbiguousLineFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-ambiguous-line"),
                                    "contract.ambiguous"));
}

TEST(SdlintContract, WrongEventFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-wrong-event"),
                                    "contract.wrong-event"));
}

TEST(SdlintContract, MissingIdFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-missing-id"),
                                    "contract.no-id"));
}

TEST(SdlintContract, NoisyInformationalLineFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-noisy-info-line"),
                                    "contract.noisy"));
}

TEST(SdlintContract, OrphanExtractorRuleFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-orphan-rule"),
                                    "contract.dead-rule"));
}

TEST(SdlintContract, UnknownLoggerClassFires) {
  EXPECT_TRUE(lint::any_with_prefix(run_fixture("contract-unknown-class"),
                                    "contract.unknown-class"));
}

TEST(SdlintCoverage, MissingKindFires) {
  const std::vector<Finding> findings =
      run_fixture("coverage-missing-kind");
  EXPECT_TRUE(lint::any_with_prefix(findings, "coverage.missing-kind"));
  // Dropping Spark loses at minimum REGISTER and FIRST_TASK.
  const auto subject = [&](std::string_view name) {
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding& f) { return f.subject == name; });
  };
  EXPECT_TRUE(subject("DRV_REGISTER"));
  EXPECT_TRUE(subject("FIRST_TASK"));
}

// --- introspection surfaces --------------------------------------------------

TEST(SdlintIntrospection, ThreeMachinesAreRegistered) {
  const auto machines = yarn::machine_descriptors();
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0].name, "RMAppImpl");
  EXPECT_EQ(machines[1].name, "RMContainerImpl");
  EXPECT_EQ(machines[2].name, "ContainerImpl");
}

TEST(SdlintIntrospection, RenderTemplateLeavesUnknownSlotsVerbatim) {
  const std::string out = contract::render_template(
      "keep {this} but fill {that}", {{"that", "X"}});
  EXPECT_EQ(out, "keep {this} but fill X");
}

TEST(SdlintIntrospection, CollectPlaceholdersFindsAllSlots) {
  const auto slots =
      contract::collect_placeholders("{a} then {b_c} not {a}");
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0], "a");
  EXPECT_EQ(slots[1], "b_c");
  EXPECT_EQ(slots[2], "a");
}

TEST(SdlintIntrospection, MatchingRulesIsExactlyOneForStartAllo) {
  const auto rules = checker::matching_rules(
      "YarnAllocator",
      "SDC START_ALLO requesting 4 executor containers, each "
      "<memory:1024, vCores:1>");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0]->emits, checker::EventKind::kStartAllo);
}

TEST(SdlintIntrospection, ComposedCorpusMinesAllFourteenTable1Kinds) {
  // The coverage check passing implies this, but assert the positive
  // form directly: compose, mine, count distinct Table-I kinds.
  std::vector<Finding> findings;
  const std::span<const contract::MilestoneSpec> groups[] = {
      yarn::yarn_milestones(), spark::spark_milestones(),
      workloads::mr_milestones()};
  const auto corpus =
      lint::compose_corpus(yarn::machine_descriptors(), groups, findings);
  EXPECT_TRUE(findings.empty());
  const checker::LogMiner miner{{.threads = 1}};
  std::vector<bool> seen(15, false);
  for (const auto& stream : corpus) {
    for (const auto& event :
         miner.mine_stream(stream.name, stream.lines).events) {
      const std::int32_t number = checker::table1_number(event.kind);
      if (number > 0) seen[static_cast<std::size_t>(number)] = true;
    }
  }
  for (std::int32_t number = 1; number <= 14; ++number) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(number)])
        << "Table I message " << number << " not mined";
  }
}

// --- register-phrase reconciliation regressions ------------------------------
// The extractor once let both driver classes match both frameworks'
// register phrasings, which made each cross pairing a dead pattern and
// double-counted lines mentioning both.  The rules are now split
// per-framework; these tests pin that with the real miner on rendered
// sample lines.

std::string log4j(std::string_view clazz, std::string_view message) {
  return "2017-07-03 16:40:00,123 INFO  " + std::string(clazz) + ": " +
         std::string(message);
}

TEST(RegisterPhraseRegression, SparkLineExtractsExactlyOneRegister) {
  const checker::LogMiner miner;
  const auto mined = miner.mine_stream(
      "driver.log",
      std::vector<std::string>{
          log4j(spark::kAmClass, "ApplicationAttemptId: "
                                 "appattempt_1499100000000_0001_000001"),
          log4j(spark::kAmClass, std::string(
                                     spark::kDriverRegisterLine.format))});
  const auto registers = std::count_if(
      mined.events.begin(), mined.events.end(), [](const auto& e) {
        return e.kind == checker::EventKind::kDriverRegister;
      });
  EXPECT_EQ(registers, 1);
}

TEST(RegisterPhraseRegression, MrLineExtractsExactlyOneRegister) {
  const checker::LogMiner miner;
  const auto mined = miner.mine_stream(
      "mram.log",
      std::vector<std::string>{
          log4j(workloads::kMrAmClass,
                "Created MRAppMaster for application "
                "appattempt_1499100000000_0001_000001"),
          log4j(workloads::kMrAmClass,
                std::string(workloads::kMrAmRegister.format))});
  const auto registers = std::count_if(
      mined.events.begin(), mined.events.end(), [](const auto& e) {
        return e.kind == checker::EventKind::kDriverRegister;
      });
  EXPECT_EQ(registers, 1);
}

TEST(RegisterPhraseRegression, CrossFrameworkPhrasesAreDeadPatterns) {
  // The MR phrasing under the Spark class (and vice versa) must not
  // extract: each framework emits only its own phrasing, so the old
  // cross pairings were unreachable patterns sdlint now forbids.
  EXPECT_TRUE(checker::matching_rules("ApplicationMaster",
                                      "Registering with the ResourceManager")
                  .empty());
  EXPECT_TRUE(checker::matching_rules("MRAppMaster",
                                      "Registering the ApplicationMaster "
                                      "with the ResourceManager")
                  .empty());
}

TEST(RegisterPhraseRegression, BothPhrasesInOneLineCountOnce) {
  // A pathological line containing both phrasings must produce exactly
  // one event, not two (the old OR-of-phrases risked ambiguity).
  const auto rules = checker::matching_rules(
      "ApplicationMaster",
      "Registering the ApplicationMaster with the ResourceManager after "
      "Registering with the ResourceManager retry");
  EXPECT_EQ(rules.size(), 1u);
}

}  // namespace
}  // namespace sdc
