// Sharded-mining equivalence and the zero-copy view layer.
//
// The contract of intra-stream sharding is that it is *invisible*: the
// sharded miner must produce the same events, ids, diagnostics and
// ordering as a serial pass, on any corpus.  These tests force many tiny
// chunks (shard_grain far below stream length) to exercise every stitch
// rule: FIRST_LOG synthesis across a chunk boundary, kind classification
// landing in a late chunk, and id binding discovered after events were
// already extracted in earlier chunks.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "common/thread_pool.hpp"
#include "logging/log_view.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/miner.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {
namespace {

constexpr std::int64_t kEpoch = 1'499'100'000'000;

std::string line(std::int64_t offset_ms, const std::string& cls,
                 const std::string& message) {
  return logging::format_epoch_ms(kEpoch + offset_ms) + " INFO  " + cls + ": " +
         message;
}

std::filesystem::path corpus_dir() {
  for (std::filesystem::path dir = std::filesystem::current_path();
       !dir.empty() && dir != dir.root_path(); dir = dir.parent_path()) {
    const auto candidate = dir / "testdata" / "golden_small";
    if (std::filesystem::is_directory(candidate)) return candidate;
  }
  return std::filesystem::path("testdata") / "golden_small";
}

void expect_same_events(const MineResult& a, const MineResult& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const auto x = a.events[i];
    const auto y = b.events[i];
    EXPECT_EQ(x.kind, y.kind) << "event " << i;
    EXPECT_EQ(x.ts_ms, y.ts_ms) << "event " << i;
    EXPECT_EQ(x.stream, y.stream) << "event " << i;
    EXPECT_EQ(x.line_no, y.line_no) << "event " << i;
    EXPECT_EQ(x.app.has_value(), y.app.has_value()) << "event " << i;
    if (x.app && y.app) {
      EXPECT_EQ(*x.app, *y.app) << "event " << i;
    }
    EXPECT_EQ(x.container.has_value(), y.container.has_value()) << "event " << i;
    if (x.container && y.container) {
      EXPECT_EQ(*x.container, *y.container) << "event " << i;
    }
  }
  EXPECT_EQ(a.lines_total, b.lines_total);
  EXPECT_EQ(a.lines_unparsed, b.lines_unparsed);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t s = 0; s < a.streams.size(); ++s) {
    EXPECT_EQ(a.streams[s].name, b.streams[s].name);
    EXPECT_EQ(a.streams[s].kind, b.streams[s].kind);
    EXPECT_EQ(a.streams[s].lines_unparsed, b.streams[s].lines_unparsed);
    EXPECT_EQ(a.streams[s].bound_app, b.streams[s].bound_app);
    EXPECT_EQ(a.streams[s].bound_container, b.streams[s].bound_container);
    // Diagnostics are part of the sharding-invisibility contract: the
    // stitch pass must fold per-chunk provisional state into the exact
    // records a serial pass emits.
    ASSERT_EQ(a.streams[s].diagnostics.size(), b.streams[s].diagnostics.size())
        << a.streams[s].name;
    for (std::size_t d = 0; d < a.streams[s].diagnostics.size(); ++d) {
      const logging::Diagnostic& x = a.streams[s].diagnostics[d];
      const logging::Diagnostic& y = b.streams[s].diagnostics[d];
      EXPECT_EQ(x.kind, y.kind) << a.streams[s].name << " diag " << d;
      EXPECT_EQ(x.line_no, y.line_no) << a.streams[s].name << " diag " << d;
      EXPECT_EQ(x.count, y.count) << a.streams[s].name << " diag " << d;
      EXPECT_EQ(x.detail, y.detail) << a.streams[s].name << " diag " << d;
    }
  }
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < logging::kDiagnosticKindCount; ++i) {
    EXPECT_EQ(a.diag_counts.by_kind[i], b.diag_counts.by_kind[i]);
  }
}

TEST(ShardedMiner, DamagedCorpusDiagnosticsIdenticalToSerial) {
  // A stream with garbage, a truncated tail, a long unparsable burst and
  // a clock step, mined with chunk grain 1 — every diagnostic summary
  // crosses chunk boundaries and must still match the serial pass.
  logging::LogBundle bundle;
  const std::string cls = "com.example.Daemon";
  for (int i = 0; i < 6; ++i) {
    bundle.append("sick.log", line(i * 100, cls, "ok " + std::to_string(i)));
  }
  bundle.append("sick.log", std::string("\x01\x00\x02 binary", 10));
  for (int i = 0; i < 5; ++i) {
    bundle.append("sick.log", "plain unparsable filler " + std::to_string(i));
  }
  bundle.append("sick.log", line(5000, cls, "resumes"));
  bundle.append("sick.log", line(100, cls, "clock stepped back"));
  bundle.append("sick.log", logging::format_epoch_ms(kEpoch + 200) + " INF");
  const MineResult serial = LogMiner(MinerOptions{1}).mine(bundle);
  const MineResult sharded = LogMiner(MinerOptions{4, 1}).mine(bundle);
  expect_same_events(serial, sharded);
  using logging::DiagnosticKind;
  EXPECT_EQ(serial.diag_counts.of(DiagnosticKind::kBinaryGarbage), 1u);
  EXPECT_GE(serial.diag_counts.of(DiagnosticKind::kUnparsableBurst), 1u);
  EXPECT_EQ(serial.diag_counts.of(DiagnosticKind::kTimestampRegression), 1u);
  EXPECT_EQ(serial.diag_counts.of(DiagnosticKind::kTruncatedLine), 1u);
}

TEST(ShardedMiner, GoldenCorpusIdenticalToSerial) {
  const auto dir = corpus_dir();
  const MineResult serial = LogMiner(MinerOptions{1}).mine_directory(dir);
  // grain=2 forces dozens of chunks per stream.
  const MineResult sharded =
      LogMiner(MinerOptions{4, 2}).mine_directory(dir);
  expect_same_events(serial, sharded);
  EXPECT_GT(serial.events.size(), 0u);
}

TEST(ShardedMiner, StitchResolvesLateBindingAcrossChunks) {
  // Classification and binding land in different (late) chunks: line 1
  // is garbage, line 2 classifies the stream, the container id only
  // appears on line 5 — after FIRST_LOG and FIRST_TASK were extracted.
  logging::LogBundle bundle;
  const std::string backend =
      "org.apache.spark.executor.CoarseGrainedExecutorBackend";
  bundle.append("exec.log", "garbage first line");
  bundle.append("exec.log", line(500, backend, "Started daemon"));
  bundle.append("exec.log", line(600, backend, "Got assigned task 0"));
  bundle.append("exec.log", line(700, backend, "heartbeat"));
  bundle.append("exec.log",
                line(800, backend,
                     "Connecting to driver for container "
                     "container_1499100000000_0001_01_000002"));
  const MineResult serial = LogMiner(MinerOptions{1}).mine(bundle);
  const MineResult sharded = LogMiner(MinerOptions{4, 1}).mine(bundle);
  expect_same_events(serial, sharded);
  // FIRST_LOG synthesized from the first *parsed* line, bound to the
  // container discovered three chunks later.
  ASSERT_EQ(sharded.streams.size(), 1u);
  ASSERT_TRUE(sharded.streams[0].bound_container.has_value());
  bool saw_first_log = false;
  for (const auto event : sharded.events) {
    if (event.kind == EventKind::kExecutorFirstLog) {
      saw_first_log = true;
      EXPECT_EQ(event.ts_ms, kEpoch + 500);
      ASSERT_TRUE(event.container.has_value());
      EXPECT_EQ(event.container->id, 2);
    }
  }
  EXPECT_TRUE(saw_first_log);
}

TEST(ShardedMiner, OutOfOrderTimestampsMergeIdentically) {
  // Within-stream timestamps are not monotonic (clock steps, buffered
  // writes); per-chunk sorted runs + k-way merge must equal the serial
  // global sort.
  logging::LogBundle bundle;
  const std::string rm_app =
      "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
  for (int i = 0; i < 50; ++i) {
    const std::int64_t offset = (i * 37) % 200;  // scrambled timestamps
    bundle.append("rm.log",
                  line(offset, rm_app,
                       "application_1499100000000_000" +
                           std::to_string(1 + i % 3) +
                           " State change from NEW_SAVING to SUBMITTED on "
                           "event = APP_NEW_SAVED"));
  }
  const MineResult serial = LogMiner(MinerOptions{1}).mine(bundle);
  const MineResult sharded = LogMiner(MinerOptions{3, 4}).mine(bundle);
  expect_same_events(serial, sharded);
  for (std::size_t i = 1; i < sharded.events.size(); ++i) {
    EXPECT_FALSE(event_order_less(sharded.events[i], sharded.events[i - 1]));
  }
}

TEST(ShardedMiner, AnalysisIdenticalThroughSdChecker) {
  const auto dir = corpus_dir();
  const AnalysisResult serial = SdChecker({.threads = 1}).analyze_directory(dir);
  const AnalysisResult sharded =
      SdChecker({.threads = 4, .shard_grain = 2}).analyze_directory(dir);
  EXPECT_EQ(serial.lines_total, sharded.lines_total);
  EXPECT_EQ(serial.events_total, sharded.events_total);
  ASSERT_EQ(serial.delays.size(), sharded.delays.size());
  for (const auto& [app, delays] : serial.delays) {
    const Delays& other = sharded.delays.at(app);
    EXPECT_EQ(delays.total, other.total) << app.str();
    EXPECT_EQ(delays.am, other.am) << app.str();
    EXPECT_EQ(delays.driver, other.driver) << app.str();
    EXPECT_EQ(delays.executor, other.executor) << app.str();
  }
}

// --- view layer --------------------------------------------------------------

TEST(LogView, FromBufferSplitsLikeGetline) {
  const logging::LogView view =
      logging::LogView::from_buffer("a\nbb\n\nccc\r\nfinal");
  ASSERT_EQ(view.line_count(), 5u);
  EXPECT_EQ(view.lines()[0], "a");
  EXPECT_EQ(view.lines()[1], "bb");
  EXPECT_EQ(view.lines()[2], "");
  EXPECT_EQ(view.lines()[3], "ccc");  // '\r' stripped
  EXPECT_EQ(view.lines()[4], "final");  // unterminated tail still counts
  EXPECT_EQ(view.size_bytes(), 16u);
}

TEST(LogView, EmptyBuffer) {
  EXPECT_EQ(logging::LogView::from_buffer("").line_count(), 0u);
  EXPECT_EQ(logging::LogView{}.line_count(), 0u);
}

TEST(LogView, FromFileMatchesBundleRead) {
  const auto dir =
      std::filesystem::temp_directory_path() / "sdc_log_view_test";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir / "a.log", std::ios::binary);
    out << "line one\nline two\r\nline three";
  }
  {
    std::ofstream out(dir / "empty.log", std::ios::binary);
  }
  const logging::BundleView view =
      logging::BundleView::read_from_directory(dir);
  const logging::LogBundle bundle =
      logging::LogBundle::read_from_directory(dir);
  EXPECT_EQ(view.stream_count(), 2u);
  ASSERT_TRUE(view.has_stream("a.log"));
  const auto& lines = view.stream("a.log").lines();
  const auto& bundle_lines = bundle.lines("a.log");
  ASSERT_EQ(lines.size(), bundle_lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], bundle_lines[i]);
  }
  EXPECT_EQ(view.stream("empty.log").line_count(), 0u);
  EXPECT_EQ(view.stream("missing.log").line_count(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(BundleView, FromBundleIsZeroCopy) {
  logging::LogBundle bundle;
  bundle.append("s.log", "hello world");
  const logging::BundleView view = logging::BundleView::from_bundle(bundle);
  ASSERT_EQ(view.stream("s.log").line_count(), 1u);
  // The view aliases the bundle's own bytes — no copy was made.
  EXPECT_EQ(view.stream("s.log").lines()[0].data(),
            bundle.lines("s.log")[0].data());
  EXPECT_EQ(view.total_lines(), 1u);
}

TEST(BundleView, MmapDirectoryMinesIdenticallyToBundle) {
  const auto dir = corpus_dir();
  const MineResult via_bundle =
      LogMiner(MinerOptions{1}).mine(logging::LogBundle::read_from_directory(dir));
  const MineResult via_view = LogMiner(MinerOptions{1}).mine_directory(dir);
  expect_same_events(via_bundle, via_view);
}

// --- parallel_for_chunked ----------------------------------------------------

TEST(ParallelForChunked, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_chunked(pool, hits.size(), 7,
                       [&](std::size_t begin, std::size_t end) {
                         ASSERT_LE(begin, end);
                         for (std::size_t i = begin; i < end; ++i) ++hits[i];
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunked, SurvivesRapidPoolChurn) {
  // Regression: parallel_for used to notify its completion condvar after
  // releasing the lock, so a straggler worker could signal a destroyed
  // stack-local condvar once the caller had already returned — corrupting
  // reused stack memory and hanging a later wait.  Rapid create/run/
  // destroy cycles on few cores made this reproducible.
  for (int round = 0; round < 300; ++round) {
    ThreadPool pool(2);
    std::atomic<int> sum{0};
    parallel_for(pool, 8, [&](std::size_t i) {
      sum += static_cast<int>(i);
    });
    ASSERT_EQ(sum.load(), 28);
  }
}

TEST(ParallelForChunked, ZeroGrainAutoSizesAndZeroNIsNoop) {
  ThreadPool pool(2);
  std::atomic<std::size_t> covered{0};
  parallel_for_chunked(pool, 100, 0, [&](std::size_t begin, std::size_t end) {
    covered += end - begin;
  });
  EXPECT_EQ(covered.load(), 100u);
  bool called = false;
  parallel_for_chunked(pool, 0, 8,
                       [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace sdc::checker
