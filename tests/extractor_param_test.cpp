// Parameterized sweep over every identified Table-I message pattern
// (TEST_P): each case is (raw log line, expected kind, expected app,
// expected container), exercised through the full parse->extract path,
// plus fuzzed id round-trips.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "sdchecker/extractor.hpp"
#include "sdchecker/parsed_line.hpp"

namespace sdc::checker {
namespace {

struct MessageCase {
  const char* name;
  const char* line;
  EventKind kind;
  std::int32_t app_id;        // 0 = none expected
  std::int64_t container_id;  // 0 = none expected
};

std::ostream& operator<<(std::ostream& os, const MessageCase& c) {
  return os << c.name;
}

constexpr const char* kTs = "2017-07-03 16:40:00,123 INFO  ";

class Table1Messages : public ::testing::TestWithParam<MessageCase> {};

TEST_P(Table1Messages, ExtractsKindAndIds) {
  const MessageCase& message_case = GetParam();
  const auto parsed = parse_line(message_case.line);
  ASSERT_TRUE(parsed.has_value());
  const auto event = extract_event(*parsed, "stream.log", 7);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, message_case.kind);
  EXPECT_EQ(event->ts_ms, 1'499'100'000'123);
  EXPECT_EQ(event->line_no, 7u);
  if (message_case.app_id > 0) {
    ASSERT_TRUE(event->app.has_value());
    EXPECT_EQ(event->app->id, message_case.app_id);
  }
  if (message_case.container_id > 0) {
    ASSERT_TRUE(event->container.has_value());
    EXPECT_EQ(event->container->id, message_case.container_id);
  } else {
    EXPECT_FALSE(event->container.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, Table1Messages,
    ::testing::Values(
        MessageCase{
            "Submitted",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0005 "
            "State change from NEW_SAVING to SUBMITTED on event = "
            "APP_NEW_SAVED",
            EventKind::kAppSubmitted, 5, 0},
        MessageCase{
            "Accepted",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0005 "
            "State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED",
            EventKind::kAppAccepted, 5, 0},
        MessageCase{
            "AttemptRegistered",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0005 "
            "State change from ACCEPTED to RUNNING on event = "
            "ATTEMPT_REGISTERED",
            EventKind::kAttemptRegistered, 5, 0},
        MessageCase{
            "Allocated",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "resourcemanager.rmcontainer.RMContainerImpl: "
            "container_1499100000000_0005_01_000003 Container Transitioned "
            "from NEW to ALLOCATED",
            EventKind::kContainerAllocated, 5, 3},
        MessageCase{
            "Acquired",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "resourcemanager.rmcontainer.RMContainerImpl: "
            "container_1499100000000_0005_01_000003 Container Transitioned "
            "from ALLOCATED to ACQUIRED",
            EventKind::kContainerAcquired, 5, 3},
        MessageCase{
            "Localizing",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "nodemanager.containermanager.container.ContainerImpl: Container "
            "container_1499100000000_0005_01_000003 transitioned from NEW to "
            "LOCALIZING",
            EventKind::kNmLocalizing, 5, 3},
        MessageCase{
            "Scheduled",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "nodemanager.containermanager.container.ContainerImpl: Container "
            "container_1499100000000_0005_01_000003 transitioned from "
            "LOCALIZING to SCHEDULED",
            EventKind::kNmScheduled, 5, 3},
        MessageCase{
            "Running",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "nodemanager.containermanager.container.ContainerImpl: Container "
            "container_1499100000000_0005_01_000003 transitioned from "
            "SCHEDULED to RUNNING",
            EventKind::kNmRunning, 5, 3},
        MessageCase{
            "DriverRegister",
            "2017-07-03 16:40:00,123 INFO  org.apache.spark.deploy.yarn."
            "ApplicationMaster: Registering the ApplicationMaster with the "
            "ResourceManager",
            EventKind::kDriverRegister, 0, 0},
        MessageCase{
            "MrRegister",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.mapreduce.v2."
            "app.MRAppMaster: Registering with the ResourceManager",
            EventKind::kDriverRegister, 0, 0},
        MessageCase{
            "StartAllo",
            "2017-07-03 16:40:00,123 INFO  org.apache.spark.deploy.yarn."
            "YarnAllocator: SDC START_ALLO requesting 4 executor containers",
            EventKind::kStartAllo, 0, 0},
        MessageCase{
            "EndAllo",
            "2017-07-03 16:40:00,123 INFO  org.apache.spark.deploy.yarn."
            "YarnAllocator: SDC END_ALLO all 4 requested containers "
            "allocated",
            EventKind::kEndAllo, 0, 0},
        MessageCase{
            "FirstTask",
            "2017-07-03 16:40:00,123 INFO  org.apache.spark.executor."
            "CoarseGrainedExecutorBackend: Got assigned task 17",
            EventKind::kExecutorFirstTask, 0, 0},
        MessageCase{
            "Released",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "resourcemanager.rmcontainer.RMContainerImpl: "
            "container_1499100000000_0005_01_000003 Container Transitioned "
            "from ACQUIRED to RELEASED",
            EventKind::kRmContainerReleased, 5, 3},
        MessageCase{
            "AppFinished",
            "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
            "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0005 "
            "State change from FINAL_SAVING to FINISHED on event = "
            "APP_UPDATE_SAVED",
            EventKind::kAppFinished, 5, 0}),
    [](const ::testing::TestParamInfo<MessageCase>& info) {
      return info.param.name;
    });

// --- fuzzed id round-trips --------------------------------------------------

class IdFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdFuzz, RoundTripRandomIds) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const ApplicationId app{rng.uniform_int(0, 9'999'999'999'999),
                            static_cast<std::int32_t>(rng.uniform_int(1, 99'999))};
    EXPECT_EQ(ApplicationId::parse(app.str()), app);
    const ContainerId container{app,
                                static_cast<std::int32_t>(rng.uniform_int(1, 9)),
                                rng.uniform_int(1, 9'999'999)};
    EXPECT_EQ(ContainerId::parse(container.str()), container);
    // Embedded in realistic message text, discovery still works.
    const std::string msg =
        "allocated " + container.str() + " for " + app.str() + " on host";
    EXPECT_EQ(find_container_id(msg), container);
    EXPECT_EQ(find_application_id(msg)->cluster_ts, app.cluster_ts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdFuzz, ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace sdc::checker
