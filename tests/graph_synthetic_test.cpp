// Synthetic scheduling-graph tests beyond the golden pipeline cases:
// degenerate timelines, released containers, replacement semantics,
// DOT structural checks.
#include <gtest/gtest.h>

#include "sdchecker/graph.hpp"

namespace sdc::checker {
namespace {

constexpr std::int64_t kT0 = 1'499'100'000'000;

AppTimeline timeline_with(const ApplicationId& app) {
  AppTimeline t;
  t.app = app;
  return t;
}

void put(AppTimeline& t, EventKind kind, std::int64_t offset) {
  t.first_ts[kind] = kT0 + offset;
  ++t.counts[kind];
}

void put(ContainerTimeline& c, EventKind kind, std::int64_t offset) {
  c.first_ts[kind] = kT0 + offset;
  ++c.counts[kind];
}

TEST(GraphSynthetic, EmptyTimelineGivesEmptyGraph) {
  const AppTimeline empty = timeline_with(ApplicationId{1, 1});
  const SchedulingGraph graph = SchedulingGraph::build(empty);
  EXPECT_TRUE(graph.nodes().empty());
  EXPECT_TRUE(graph.edges().empty());
  EXPECT_TRUE(graph.validate().empty());
  EXPECT_NE(graph.to_dot().find("digraph scheduling"), std::string::npos);
}

TEST(GraphSynthetic, AppOnlyChain) {
  AppTimeline t = timeline_with(ApplicationId{1, 2});
  put(t, EventKind::kAppSubmitted, 0);
  put(t, EventKind::kAppAccepted, 5);
  put(t, EventKind::kAttemptRegistered, 4000);
  const SchedulingGraph graph = SchedulingGraph::build(t);
  EXPECT_EQ(graph.nodes().size(), 3u);
  EXPECT_EQ(graph.edges().size(), 2u);
  EXPECT_TRUE(graph.validate().empty());
}

TEST(GraphSynthetic, NeverUsedContainerGetsReleasedEdge) {
  AppTimeline t = timeline_with(ApplicationId{1, 3});
  put(t, EventKind::kAppSubmitted, 0);
  ContainerTimeline c;
  c.id = ContainerId{{1, 3}, 1, 2};
  put(c, EventKind::kContainerAllocated, 100);
  put(c, EventKind::kContainerAcquired, 150);
  put(c, EventKind::kRmContainerReleased, 30'000);
  t.containers[c.id] = c;
  const SchedulingGraph graph = SchedulingGraph::build(t);
  EXPECT_TRUE(graph.validate().empty());
  // allocated->acquired and allocated->released edges exist.
  EXPECT_EQ(graph.edges().size(), 2u);
}

TEST(GraphSynthetic, ReplacementContainerSkipsEndAlloEdge) {
  AppTimeline t = timeline_with(ApplicationId{1, 4});
  put(t, EventKind::kStartAllo, 1000);
  put(t, EventKind::kEndAllo, 3000);
  // Original container: acquired before END_ALLO -> edge present.
  ContainerTimeline original;
  original.id = ContainerId{{1, 4}, 1, 2};
  put(original, EventKind::kContainerAllocated, 1500);
  put(original, EventKind::kContainerAcquired, 2000);
  t.containers[original.id] = original;
  // Replacement: acquired after END_ALLO -> edge must be skipped.
  ContainerTimeline replacement;
  replacement.id = ContainerId{{1, 4}, 1, 3};
  put(replacement, EventKind::kContainerAllocated, 8000);
  put(replacement, EventKind::kContainerAcquired, 9000);
  t.containers[replacement.id] = replacement;

  const SchedulingGraph graph = SchedulingGraph::build(t);
  EXPECT_TRUE(graph.validate().empty());
  // Count edges into END_ALLO: start_allo->end + one acquired->end.
  std::size_t into_end = 0;
  for (const GraphEdge& edge : graph.edges()) {
    if (graph.nodes()[edge.to].kind == EventKind::kEndAllo) ++into_end;
  }
  EXPECT_EQ(into_end, 2u);
}

TEST(GraphSynthetic, FailedContainerChainValidates) {
  AppTimeline t = timeline_with(ApplicationId{1, 5});
  ContainerTimeline c;
  c.id = ContainerId{{1, 5}, 1, 2};
  put(c, EventKind::kContainerAllocated, 0);
  put(c, EventKind::kContainerAcquired, 100);
  put(c, EventKind::kNmLocalizing, 200);
  put(c, EventKind::kNmScheduled, 800);
  put(c, EventKind::kNmRunning, 900);
  put(c, EventKind::kNmFailed, 1200);
  t.containers[c.id] = c;
  const SchedulingGraph graph = SchedulingGraph::build(t);
  EXPECT_TRUE(graph.validate().empty());
  bool failed_node = false;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind == EventKind::kNmFailed) failed_node = true;
  }
  EXPECT_TRUE(failed_node);
}

TEST(GraphSynthetic, DotEscapesAndLabelsEveryNode) {
  AppTimeline t = timeline_with(ApplicationId{1, 6});
  put(t, EventKind::kAppSubmitted, 0);
  put(t, EventKind::kDriverFirstLog, 1500);
  const std::string dot = SchedulingGraph::build(t).to_dot();
  EXPECT_NE(dot.find("n0 ["), std::string::npos);
  EXPECT_NE(dot.find("n1 ["), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // YARN state
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // Spark state
}

}  // namespace
}  // namespace sdc::checker
