// Sharded-vs-serial equivalence for the analysis stage.
//
// The whole point of the app-partitioned pipeline is that it is an
// *invisible* optimization: every export byte, every diagnostic, every
// aggregate percentile must match the serial stage exactly.  These tests
// pin that down for several shard counts (including more shards than
// apps), for repeated runs, and for the incremental analyzer's snapshot
// fold.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "harness/scenario.hpp"
#include "sdchecker/compare.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/incremental.hpp"
#include "sdchecker/sdchecker.hpp"
#include "sdchecker/trace_export.hpp"
#include "workloads/tpch.hpp"

namespace sdc::checker {
namespace {

/// A multi-app corpus with a little corruption so the diagnostics path is
/// exercised too.
logging::LogBundle make_corpus(int jobs) {
  harness::ScenarioConfig scenario;
  scenario.seed = 77;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 5 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 2 + i % 3);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  logging::LogBundle logs = harness::run_scenario(scenario).logs;
  logs.append("rm.log", "no timestamp here: plain unparsable line");
  logs.append("rm.log", std::string("\x00\x01\x02 binary garbage", 18));
  return logs;
}

AnalysisResult analyze_with_shards(const logging::LogBundle& logs,
                                   std::size_t shards) {
  AnalyzeOptions options;
  options.analyze_shards = shards;
  return SdChecker(options).analyze(logs);
}

std::string diagnostics_fingerprint(const AnalysisResult& analysis) {
  std::string out;
  for (const logging::Diagnostic& d : analysis.diagnostics) {
    out += logging::render_diagnostic(d);
    out += '\n';
  }
  return out;
}

TEST(AnalyzeSharded, ShardCountsProduceByteIdenticalOutput) {
  const logging::LogBundle logs = make_corpus(9);
  const AnalysisResult serial = analyze_with_shards(logs, 1);
  ASSERT_GE(serial.timelines.size(), 9u);
  const std::string serial_json = analysis_json(serial);
  const std::string serial_trace = scheduling_trace_json(serial);
  const std::string serial_diag = diagnostics_fingerprint(serial);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{7}, std::size_t{16}}) {
    const AnalysisResult sharded = analyze_with_shards(logs, shards);
    EXPECT_EQ(analysis_json(sharded), serial_json) << "shards=" << shards;
    EXPECT_EQ(scheduling_trace_json(sharded), serial_trace)
        << "shards=" << shards;
    EXPECT_EQ(diagnostics_fingerprint(sharded), serial_diag)
        << "shards=" << shards;
    EXPECT_EQ(sharded.events_total, serial.events_total);
    EXPECT_EQ(sharded.events_unattributed, serial.events_unattributed);
    EXPECT_EQ(sharded.anomalies.size(), serial.anomalies.size());
    EXPECT_EQ(sharded.render_completeness(), serial.render_completeness());
    // The aggregate comparison must read as an exact identity.
    const ComparisonResult delta = compare(serial, sharded);
    EXPECT_TRUE(delta.significant(1e-9).empty()) << "shards=" << shards;
  }
}

TEST(AnalyzeSharded, RepeatedShardedRunsAreDeterministic) {
  const logging::LogBundle logs = make_corpus(6);
  const std::string first = analysis_json(analyze_with_shards(logs, 4));
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(analysis_json(analyze_with_shards(logs, 4)), first);
  }
}

TEST(AnalyzeSharded, AutoShardCountResolvesToHardware) {
  AnalyzeOptions options;
  options.analyze_shards = 0;
  EXPECT_GE(options.effective_analyze_shards(), 1u);
  options.analyze_shards = 5;
  EXPECT_EQ(options.effective_analyze_shards(), 5u);
}

TEST(AnalyzeSharded, ShardRoutingIsTotalAndStable) {
  for (std::int32_t id = 1; id <= 200; ++id) {
    const ApplicationId app{1499100000000 + id % 3, id};
    for (const std::size_t shards : {1u, 2u, 7u, 16u}) {
      const std::size_t shard = timeline_shard(app, shards);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, timeline_shard(app, shards));  // stable
    }
  }
}

TEST(AnalyzeSharded, GroupEventsShardedMatchesSerialGrouping) {
  const logging::LogBundle logs = make_corpus(5);
  LogMiner miner;
  const MineResult mined = miner.mine(logs);
  const GroupResult serial = group_events(mined.events);

  ThreadPool pool(4);
  const ShardedGroupResult sharded =
      group_events_sharded(mined.events, 4, pool);
  EXPECT_EQ(sharded.unattributed, serial.unattributed);

  std::size_t total_apps = 0;
  std::set<ApplicationId> seen;
  for (std::size_t s = 0; s < sharded.shards.size(); ++s) {
    for (const auto& [app, timeline] : sharded.shards[s]) {
      ++total_apps;
      EXPECT_TRUE(seen.insert(app).second) << "app in two shards";
      EXPECT_EQ(timeline_shard(app, sharded.shards.size()), s);
      const auto it = serial.apps.find(app);
      ASSERT_NE(it, serial.apps.end());
      // Identical per-kind state: presence bits, first timestamps, and
      // the container set.
      EXPECT_EQ(timeline.first_ts.present_mask(),
                it->second.first_ts.present_mask());
      for (const auto& [kind, ts] : timeline.first_ts) {
        EXPECT_EQ(ts, *it->second.ts(kind));
      }
      EXPECT_EQ(timeline.containers.size(), it->second.containers.size());
    }
  }
  EXPECT_EQ(total_apps, serial.apps.size());
}

TEST(AnalyzeSharded, IncrementalSnapshotShardedMatchesSerial) {
  const logging::LogBundle logs = make_corpus(6);
  IncrementalAnalyzer analyzer;
  for (const std::string& name : logs.stream_names()) {
    analyzer.feed_all(name, logs.lines(name));
  }
  const std::string serial = analysis_json(analyzer.snapshot());
  EXPECT_EQ(analysis_json(analyzer.snapshot(4)), serial);
  EXPECT_EQ(analysis_json(analyzer.snapshot(0)), serial);  // auto
}

TEST(AnalyzeSharded, MoreShardsThanAppsStillCoversEverything) {
  const logging::LogBundle logs = make_corpus(2);
  const AnalysisResult serial = analyze_with_shards(logs, 1);
  const AnalysisResult wide = analyze_with_shards(logs, 64);
  EXPECT_EQ(analysis_json(wide), analysis_json(serial));
}

}  // namespace
}  // namespace sdc::checker
