// Example: build the Fig.-3 scheduling graph for one application and
// export it as Graphviz DOT.
//
//   ./graph_export [out.dot]
//   dot -Tpng out.dot -o scheduling_graph.png
#include <cstdio>
#include <fstream>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

int main(int argc, char** argv) {
  using namespace sdc;
  const char* out_path = argc > 1 ? argv[1] : "scheduling_graph.dot";

  // One Spark-SQL app with two executors, matching the paper's Fig. 3.
  harness::ScenarioConfig scenario;
  scenario.seed = 3;
  harness::SparkSubmissionPlan plan;
  plan.at = seconds(1);
  plan.app = workloads::make_tpch_query(1, 1024, 2);
  scenario.spark_jobs.push_back(std::move(plan));
  const auto result = harness::run_scenario(scenario);

  const auto analysis = checker::SdChecker().analyze(result.logs);
  const auto& [app, timeline] = *analysis.timelines.begin();
  const checker::SchedulingGraph graph = analysis.graph_for(app);

  std::printf("Application %s\n", app.str().c_str());
  std::printf("  graph: %zu nodes, %zu edges\n", graph.nodes().size(),
              graph.edges().size());
  const auto violations = graph.validate();
  std::printf("  temporal consistency: %s\n",
              violations.empty() ? "OK (all edges forward in time)"
                                 : "VIOLATIONS:");
  for (const auto& violation : violations) {
    std::printf("    %s\n", violation.c_str());
  }

  std::ofstream out(out_path);
  out << graph.to_dot();
  std::printf("  DOT written to %s (render: dot -Tpng %s -o graph.png)\n",
              out_path, out_path);

  // Also show the event sequence with Table-I numbers, like Fig. 3.
  std::printf("\nEvent order (Table-I message numbers in parentheses):\n");
  std::vector<checker::GraphNode> nodes = graph.nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](const checker::GraphNode& a, const checker::GraphNode& b) {
              return a.ts_ms < b.ts_ms;
            });
  for (const auto& node : nodes) {
    const std::int32_t num = checker::table1_number(node.kind);
    std::printf("  %+10.3fs  %-40s %s%s%s\n",
                static_cast<double>(node.ts_ms - nodes.front().ts_ms) / 1000.0,
                node.entity.c_str(),
                std::string(checker::event_name(node.kind)).c_str(),
                num > 0 ? " (" : "",
                num > 0 ? (std::to_string(num) + ")").c_str() : "");
  }
  return 0;
}
