// Example: how the scheduling-delay *fraction* varies across workload
// classes — the paper's core motivation ("this assumption [that
// scheduling delay is negligible] will not hold true when a job is tiny
// and short", §I) demonstrated across a HiBench-style zoo.
//
//   ./workload_zoo
#include <cstdio>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/hibench.hpp"
#include "workloads/tpch.hpp"

int main() {
  using namespace sdc;
  struct ZooEntry {
    const char* label;
    spark::SparkAppConfig config;
  };
  const ZooEntry zoo[] = {
      {"interactive scan 256MB", workloads::make_interactive_scan(256, 2)},
      {"tpch q6 2GB", workloads::make_tpch_query(6, 2048, 4)},
      {"tpch q9 2GB", workloads::make_tpch_query(9, 2048, 4)},
      {"bayes 2GB", workloads::make_bayes(2048, 4)},
      {"pagerank 4GB x8 iters", workloads::make_pagerank(4096, 4, 8)},
      {"terasort 30GB", workloads::make_terasort(30 * 1024, 8)},
  };

  std::printf("%-24s %10s %10s %10s %12s\n", "workload", "sched", "runtime",
              "sched%", "in-app share");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const ZooEntry& entry : zoo) {
    // Each workload measured over several runs for stable medians.
    harness::ScenarioConfig scenario;
    scenario.seed = 777;
    scenario.extra_horizon = seconds(8 * 3600);
    for (int i = 0; i < 8; ++i) {
      harness::SparkSubmissionPlan plan;
      plan.at = seconds(2) + seconds(25) * i;
      plan.app = entry.config;
      scenario.spark_jobs.push_back(std::move(plan));
    }
    const auto result = harness::run_scenario(scenario);
    const auto analysis =
        checker::SdChecker({.threads = 2}).analyze(result.logs);

    SampleSet sched;
    SampleSet runtime;
    SampleSet in_share;
    for (const auto& job : result.jobs) {
      const auto it = analysis.delays.find(job.app);
      if (it == analysis.delays.end() || !it->second.total) continue;
      const double total_s = static_cast<double>(*it->second.total) / 1000.0;
      sched.add(total_s);
      runtime.add(to_seconds(job.finished_at - job.submitted_at));
      if (it->second.in_app) {
        in_share.add(static_cast<double>(*it->second.in_app) /
                     static_cast<double>(*it->second.total));
      }
    }
    std::printf("%-24s %9.1fs %9.1fs %9.0f%% %11.0f%%\n", entry.label,
                sched.median(), runtime.median(),
                sched.median() / runtime.median() * 100.0,
                in_share.median() * 100.0);
  }
  std::printf(
      "\nThe shorter the job, the larger the scheduling share — and most of\n"
      "it is Spark-side (in-application), exactly the paper's conclusion.\n");
  return 0;
}
