// Example: the SPARK-21562 hunt (paper §V-A).
//
// Reproduces the discovery end-to-end: run over-requesting Spark apps on
// the opportunistic scheduler, write the logs to disk, then let
// SDchecker's anomaly detector find the allocated-but-never-used
// containers — the exact signature that led to the upstream bug report.
//
//   ./bug_hunt [jobs] [over_request_factor]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

int main(int argc, char** argv) {
  using namespace sdc;
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 12;
  const double factor = argc > 2 ? std::atof(argv[2]) : 1.5;

  harness::ScenarioConfig scenario;
  scenario.seed = 21562;
  scenario.yarn.scheduler = yarn::SchedulerKind::kOpportunistic;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(2 + 9 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    plan.app.over_request_factor = factor;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  std::printf("Running %d Spark-SQL jobs on the opportunistic scheduler,\n"
              "each over-requesting containers by %.2fx...\n",
              jobs, factor);
  const auto result = harness::run_scenario(scenario);

  const auto log_dir =
      std::filesystem::temp_directory_path() / "sdchecker-bug-hunt-logs";
  result.logs.write_to_directory(log_dir);
  std::printf("Logs in %s\n\n", log_dir.c_str());

  const auto analysis =
      checker::SdChecker({.threads = 2}).analyze_directory(log_dir);

  const auto findings =
      analysis.anomalies_of(checker::AnomalyType::kNeverUsedContainer);
  std::printf("SDchecker anomaly report: %zu findings across %zu apps\n",
              findings.size(), analysis.timelines.size());
  std::size_t shown = 0;
  for (const checker::Anomaly* finding : findings) {
    if (shown++ >= 5) {
      std::printf("  ... and %zu more\n", findings.size() - 5);
      break;
    }
    std::printf("  [%s] app %s, %s:\n      %s\n",
                std::string(checker::anomaly_type_name(finding->type)).c_str(),
                finding->app.str().c_str(), finding->entity.c_str(),
                finding->detail.c_str());
  }

  // Cross-check with per-app accounting.
  std::printf("\nPer-app accounting (first 5 apps):\n");
  std::size_t listed = 0;
  for (const auto& [app, timeline] : analysis.timelines) {
    if (listed++ >= 5) break;
    std::size_t never_used = 0;
    for (const auto& [cid, container] : timeline.containers) {
      if (cid.is_am()) continue;
      const bool used = container.has(checker::EventKind::kNmLocalizing) ||
                        container.has(checker::EventKind::kExecutorFirstLog);
      if (!used) ++never_used;
    }
    std::printf("  %s: %zu containers, %zu never used\n", app.str().c_str(),
                timeline.containers.size(), never_used);
  }
  std::printf("\nEach app asked for ceil(4 x %.2f) = %d containers but "
              "launched 4 —\nthe surplus shows RM states only, exactly the "
              "§V-A log signature.\n",
              factor, static_cast<int>(std::ceil(4 * factor)));
  return findings.empty() ? 1 : 0;
}
