// Example: quantify how background interference inflates each component
// of the scheduling delay (the paper's §IV-E methodology in ~100 lines).
//
// Runs three conditions — idle, I/O-heavy (dfsIO writers), CPU-heavy
// (Kmeans apps) — over the same Spark-SQL victims, and prints a
// component-by-component comparison mined purely from the logs.
//
//   ./interference_study [victims] [dfsio_maps] [kmeans_apps]
#include <cstdio>
#include <cstdlib>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/generators.hpp"
#include "workloads/tpch.hpp"

namespace {

using namespace sdc;

checker::AggregateReport run_condition(int victims, int dfsio_maps,
                                       int kmeans_apps) {
  harness::ScenarioConfig scenario;
  scenario.seed = 7;
  scenario.extra_horizon = seconds(8 * 3600);
  if (dfsio_maps > 0) {
    harness::MrSubmissionPlan dfsio;
    dfsio.at = 0;
    dfsio.app = workloads::make_dfsio(dfsio_maps, seconds(600));
    scenario.mr_jobs.push_back(std::move(dfsio));
  }
  for (int i = 0; i < kmeans_apps; ++i) {
    harness::SparkSubmissionPlan kmeans;
    kmeans.at = millis(250) * i;
    kmeans.app = workloads::make_kmeans(seconds(600));
    scenario.spark_jobs.push_back(std::move(kmeans));
  }
  for (int i = 0; i < victims; ++i) {
    harness::SparkSubmissionPlan victim;
    victim.at = seconds(35 + 8 * i);
    victim.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    victim.app.name = "victim-" + victim.app.name;
    scenario.spark_jobs.push_back(std::move(victim));
  }
  const auto result = harness::run_scenario(scenario);
  const auto analysis = checker::SdChecker({.threads = 2}).analyze(result.logs);
  // Fold in only the victims.
  checker::AggregateReport report;
  for (const auto& job : result.jobs) {
    if (job.name.rfind("victim-", 0) != 0) continue;
    const auto it = analysis.delays.find(job.app);
    if (it != analysis.delays.end()) report.add(it->second);
  }
  return report;
}

void compare(const char* metric, double idle, double io, double cpu) {
  std::printf("  %-14s %8.2fs %8.2fs (%4.1fx) %8.2fs (%4.1fx)\n", metric, idle,
              io, io / idle, cpu, cpu / idle);
}

}  // namespace

int main(int argc, char** argv) {
  const int victims = argc > 1 ? std::atoi(argv[1]) : 25;
  const int dfsio_maps = argc > 2 ? std::atoi(argv[2]) : 100;
  const int kmeans_apps = argc > 3 ? std::atoi(argv[3]) : 16;

  std::printf("Interference study: %d Spark-SQL victims\n", victims);
  std::printf("  conditions: idle | %d dfsIO maps | %d Kmeans apps\n\n",
              dfsio_maps, kmeans_apps);

  const auto idle = run_condition(victims, 0, 0);
  const auto io = run_condition(victims, dfsio_maps, 0);
  const auto cpu = run_condition(victims, 0, kmeans_apps);

  std::printf("  %-14s %9s %17s %17s\n", "median of", "idle", "io-heavy",
              "cpu-heavy");
  compare("total", idle.total.median(), io.total.median(), cpu.total.median());
  compare("out-app", idle.out_app.median(), io.out_app.median(),
          cpu.out_app.median());
  compare("in-app", idle.in_app.median(), io.in_app.median(),
          cpu.in_app.median());
  compare("localization", idle.localization.median(), io.localization.median(),
          cpu.localization.median());
  compare("launching", idle.launching.median(), io.launching.median(),
          cpu.launching.median());
  compare("driver", idle.driver.median(), io.driver.median(),
          cpu.driver.median());
  compare("executor", idle.executor.median(), io.executor.median(),
          cpu.executor.median());

  std::printf(
      "\nReading the table: I/O interference hammers localization (the\n"
      "out-application path) while CPU interference hits the JVM-bound\n"
      "in-application phases — the two fingerprints of paper Figs. 12/13.\n");
  return 0;
}
