// Quickstart: simulate a small Spark-SQL-on-YARN run, write the log files
// to disk exactly as a real cluster would leave them, then point
// SDchecker at the directory and print the scheduling-delay decomposition.
//
//   ./quickstart [log_dir]
#include <cstdio>
#include <filesystem>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/tpch.hpp"

int main(int argc, char** argv) {
  using namespace sdc;
  const std::filesystem::path log_dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() /
                               "sdchecker-quickstart-logs";

  // --- 1. Simulate: ten TPC-H queries on a 25-node cluster ----------------
  harness::ScenarioConfig scenario;
  scenario.seed = 42;
  for (int i = 0; i < 10; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(2 + 6 * i);
    plan.app = workloads::make_tpch_query(/*query=*/1 + i % 22,
                                          /*input_mb=*/2048,
                                          /*num_executors=*/4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  std::printf("Simulating %zu Spark-SQL queries...\n",
              scenario.spark_jobs.size());
  harness::ScenarioResult result = harness::run_scenario(scenario);
  std::printf("  %zu jobs completed, %llu simulation events, %zu log lines\n",
              result.jobs.size(),
              static_cast<unsigned long long>(result.events_executed),
              result.logs.total_lines());

  // --- 2. Drop the logs on disk (what a real deployment gives you) --------
  result.logs.write_to_directory(log_dir);
  std::printf("  logs written to %s\n", log_dir.c_str());

  // --- 3. Mine with SDchecker ---------------------------------------------
  checker::SdChecker sdchecker({.threads = 2});
  checker::AnalysisResult analysis = sdchecker.analyze_directory(log_dir);
  std::printf("\nSDchecker: %zu lines mined, %zu events, %zu applications\n\n",
              analysis.lines_total, analysis.events_total,
              analysis.timelines.size());
  std::printf("%s\n", analysis.aggregate.render_text().c_str());

  // --- 4. Per-app view for the first application ---------------------------
  if (!analysis.delays.empty()) {
    const auto& [app, delays] = *analysis.delays.begin();
    std::printf("Decomposition for %s:\n", app.str().c_str());
    const auto show = [](const char* name,
                         const std::optional<std::int64_t>& v) {
      if (v) {
        std::printf("  %-12s %8.3fs\n", name,
                    static_cast<double>(*v) / 1000.0);
      }
    };
    show("total", delays.total);
    show("am", delays.am);
    show("driver", delays.driver);
    show("executor", delays.executor);
    show("in-app", delays.in_app);
    show("out-app", delays.out_app);
    show("alloc", delays.alloc);
  }
  if (!analysis.anomalies.empty()) {
    std::printf("\n%zu anomalies detected\n", analysis.anomalies.size());
  }
  return 0;
}
