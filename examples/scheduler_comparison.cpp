// Example: centralized Capacity Scheduler vs distributed Opportunistic
// scheduler, on an idle and on a busy cluster (paper §IV-C in one run).
//
// Shows the core trade-off: the distributed path allocates two orders of
// magnitude faster, but its random placement queues tasks behind busy
// nodes when the cluster is loaded.
//
//   ./scheduler_comparison [jobs]
#include <cstdio>
#include <cstdlib>

#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "workloads/generators.hpp"
#include "workloads/tpch.hpp"

namespace {

using namespace sdc;

struct Outcome {
  double alloc_median_ms = 0;
  double alloc_p95_ms = 0;
  double queuing_p95_s = 0;
  double queuing_max_s = 0;
  double total_p95_s = 0;
};

Outcome run(yarn::SchedulerKind scheduler, bool busy, int jobs) {
  harness::ScenarioConfig scenario;
  scenario.seed = 13;
  scenario.yarn.scheduler = scheduler;
  scenario.extra_horizon = seconds(8 * 3600);
  if (busy) {
    harness::MrSubmissionPlan load;
    load.at = 0;
    load.app =
        workloads::make_mr_wordcount_for_load(0.93, 25 * 32, seconds(75));
    scenario.mr_jobs.push_back(std::move(load));
  }
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(busy ? 20 : 2) + seconds(7) * i;
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    plan.app.name = "sql-" + plan.app.name;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  const auto analysis = checker::SdChecker({.threads = 2}).analyze(result.logs);

  Outcome outcome;
  SampleSet alloc;
  SampleSet queuing;
  SampleSet total;
  for (const auto& job : result.jobs) {
    if (job.name.rfind("sql-", 0) != 0) continue;
    const auto it = analysis.delays.find(job.app);
    if (it == analysis.delays.end()) continue;
    const checker::Delays& delays = it->second;
    if (delays.alloc) alloc.add(static_cast<double>(*delays.alloc));
    if (delays.total) total.add(static_cast<double>(*delays.total) / 1000.0);
    for (const std::int64_t q : delays.worker_queuings()) {
      queuing.add(static_cast<double>(q) / 1000.0);
    }
  }
  if (!alloc.empty()) {
    outcome.alloc_median_ms = alloc.median();
    outcome.alloc_p95_ms = alloc.p95();
  }
  if (!queuing.empty()) {
    outcome.queuing_p95_s = queuing.p95();
    outcome.queuing_max_s = queuing.max();
  }
  if (!total.empty()) outcome.total_p95_s = total.p95();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 20;
  std::printf("Scheduler comparison, %d Spark-SQL jobs per condition\n\n",
              jobs);
  struct Case {
    const char* name;
    yarn::SchedulerKind kind;
    bool busy;
  };
  const Case cases[] = {
      {"centralized / idle cluster", yarn::SchedulerKind::kCapacity, false},
      {"distributed / idle cluster", yarn::SchedulerKind::kOpportunistic,
       false},
      {"centralized / busy cluster", yarn::SchedulerKind::kCapacity, true},
      {"distributed / busy cluster", yarn::SchedulerKind::kOpportunistic,
       true},
      {"sampling(d=2) / busy cluster", yarn::SchedulerKind::kSampling, true},
  };
  std::printf("  %-28s %12s %12s %12s %10s\n", "condition", "alloc med",
              "alloc p95", "queuing p95", "total p95");
  for (const Case& c : cases) {
    const Outcome o = run(c.kind, c.busy, jobs);
    std::printf("  %-28s %10.0fms %10.0fms %11.1fs %9.1fs\n", c.name,
                o.alloc_median_ms, o.alloc_p95_ms, o.queuing_p95_s,
                o.total_p95_s);
  }
  std::printf(
      "\nTake-away (paper Fig. 7): the distributed scheduler wins allocation\n"
      "latency by ~100x, but on a busy cluster its randomly-placed tasks\n"
      "queue for tens of seconds at the node — a bad trade for short jobs.\n"
      "Sparrow-style power-of-two probing keeps the fast allocation while\n"
      "trimming that queuing tail.\n");
  return 0;
}
