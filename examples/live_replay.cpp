// Example: online analysis with the IncrementalAnalyzer.
//
// Replays a log corpus in global timestamp order — exactly the order a
// `tail -f` aggregator would deliver lines from a live cluster — and
// prints the decomposition as it *converges*: first the out-application
// components resolve, then driver delay, and finally the total once the
// first task is assigned.
//
//   ./live_replay [jobs]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "harness/scenario.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/incremental.hpp"
#include "workloads/tpch.hpp"

int main(int argc, char** argv) {
  using namespace sdc;
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 6;

  // Produce a corpus (stand-in for a day of cluster logs).
  harness::ScenarioConfig scenario;
  scenario.seed = 99;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(2 + 7 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto run = harness::run_scenario(scenario);

  // Flatten to (timestamp, stream, line) and sort by time — the arrival
  // order of a live aggregation pipeline.
  struct TimedLine {
    std::int64_t ts;
    const std::string* stream;
    const std::string* line;
  };
  std::vector<TimedLine> feed;
  std::vector<std::string> names = run.logs.stream_names();
  for (const auto& name : names) {
    for (const auto& line : run.logs.lines(name)) {
      const auto ts = logging::parse_epoch_ms(line.substr(0, 23));
      feed.push_back(TimedLine{ts ? *ts : 0, &name, &line});
    }
  }
  std::stable_sort(feed.begin(), feed.end(),
                   [](const TimedLine& a, const TimedLine& b) {
                     return a.ts < b.ts;
                   });
  std::printf("Replaying %zu log lines from %zu files in arrival order...\n\n",
              feed.size(), names.size());

  checker::IncrementalAnalyzer analyzer;
  std::size_t resolved_totals = 0;
  for (const TimedLine& timed : feed) {
    analyzer.feed(*timed.stream, *timed.line);
    // Report the moment an application's total delay becomes known.
    // The live table is unordered; sort so same-line resolutions print
    // in app order.
    std::vector<ApplicationId> apps;
    apps.reserve(analyzer.timelines().size());
    for (const auto& [app, timeline] : analyzer.timelines()) {
      apps.push_back(app);
    }
    std::sort(apps.begin(), apps.end());
    for (const ApplicationId& app : apps) {
      const auto delays = analyzer.delays_for(app);
      if (delays.total) {
        static std::set<ApplicationId> reported;
        if (reported.insert(app).second) {
          ++resolved_totals;
          std::printf("  [live] %s  total=%6.2fs  am=%5.2fs  driver=%5.2fs  "
                      "executor=%5.2fs  (after %zu lines)\n",
                      app.str().c_str(),
                      static_cast<double>(*delays.total) / 1000.0,
                      static_cast<double>(delays.am.value_or(0)) / 1000.0,
                      static_cast<double>(delays.driver.value_or(0)) / 1000.0,
                      static_cast<double>(delays.executor.value_or(0)) / 1000.0,
                      analyzer.lines_total());
        }
      }
    }
  }

  const auto snapshot = analyzer.snapshot();
  std::printf("\nFinal snapshot (%zu lines, %zu events, %zu apps):\n%s",
              analyzer.lines_total(), analyzer.events_total(),
              snapshot.timelines.size(),
              snapshot.aggregate.render_text().c_str());
  std::printf("\n%zu of %d applications resolved their total delay live.\n",
              resolved_totals, jobs);
  return 0;
}
