// Seeded thread-safety violation (ISSUE 8).  NOT part of any CMake
// target: scripts/thread_safety_check.sh compiles this TU twice under
// clang -Werror=thread-safety-analysis — once with
// SDC_TSA_SEED_VIOLATION defined (the unguarded access below, which
// must FAIL to compile, proving the gate bites) and once without (the
// guarded twin, which must compile, proving the failure came from the
// analysis and not from unrelated breakage).
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) SDC_EXCLUDES(mu_) {
#if defined(SDC_TSA_SEED_VIOLATION)
    // Write to guarded state without holding mu_: clang's thread safety
    // analysis must reject this TU.
    balance_ += amount;
#else
    const sdc::MutexLock lock(mu_);
    balance_ += amount;
#endif
  }

 private:
  sdc::Mutex mu_;
  int balance_ SDC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return 0;
}
