#!/bin/sh
# Proves the thread-safety gate bites (ISSUE 8).
#
# Compiles scripts/thread_safety_violation.cpp twice under clang with
# -Werror=thread-safety-analysis:
#
#   1. with SDC_TSA_SEED_VIOLATION defined — an unguarded write to
#      SDC_GUARDED_BY state.  The compile must FAIL; if it passes, the
#      annotations are dead and the CI job is a no-op.
#   2. without the define — the properly locked twin.  The compile must
#      PASS, proving the failure in (1) came from the analysis and not
#      from unrelated breakage (wrong include path, broken header...).
#
# Usage: scripts/thread_safety_check.sh
# Env:   CXX (default clang++)
#
# When clang is not installed the script exits 0 with a notice (GCC
# compiles the annotation macros to nothing); CI runs it under clang
# and enforces both directions.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
CXX="${CXX:-clang++}"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "thread_safety_check: $CXX not installed; skipping (CI enforces)" >&2
  exit 0
fi
if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "thread_safety_check: $CXX is not clang; skipping (CI enforces)" >&2
  exit 0
fi

TU="$REPO_ROOT/scripts/thread_safety_violation.cpp"
FLAGS="-std=c++20 -fsyntax-only -I$REPO_ROOT/src \
  -Wthread-safety -Werror=thread-safety-analysis"

if "$CXX" $FLAGS -DSDC_TSA_SEED_VIOLATION=1 "$TU" 2>/dev/null; then
  echo "thread_safety_check: FAIL — the seeded unguarded access" \
       "compiled; the thread-safety analysis is not biting" >&2
  exit 1
fi
echo "thread_safety_check: seeded violation rejected (good)" >&2

if ! "$CXX" $FLAGS "$TU"; then
  echo "thread_safety_check: FAIL — the guarded twin does not compile;" \
       "the rejection above is unrelated breakage, not the analysis" >&2
  exit 1
fi
echo "thread_safety_check: guarded twin compiles (good)" >&2
