#!/usr/bin/env bash
# Fleet-mode smoke: run the pipelined multi-corpus pipeline over four
# simulated corpora and require
#   1. every per-corpus JSON written by `fleet --out-dir` is
#      byte-identical to a standalone `sdchecker analyze --json` of the
#      same directory (the fleet pipeline is an invisible optimization),
#   2. the regression gate passes against the fleet's own summary
#      (no self-drift: exit 0/3, never 4),
#   3. the gate trips (exit 4) against a baseline recorded from a
#      deliberately shifted fleet (same seeds, 16 executors and 2 GB
#      inputs instead of the defaults, so every delay distribution
#      moves),
#   4. a malformed baseline is a hard error (exit 1), not a silent pass.
# Usage: scripts/fleet_smoke.sh [BUILD_DIR]  (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SDCHECKER="$BUILD_DIR/tools/sdchecker"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/sdc-fleet-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# `fleet` and `analyze` exit 3 when corpora carry diagnostics — fine
# here; anything else (including 4, drift) is a failure at these sites.
ok_or_diag() {
  local rc=0
  "$@" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
    echo "fleet_smoke: '$*' exited $rc" >&2
    exit 1
  fi
}

# Four corpora of different sizes under one root.
ROOT="$WORK/fleet"
for i in 0 1 2 3; do
  "$SDCHECKER" simulate "$ROOT/corpus$i" \
    --jobs $((3 + i * 2)) --seed $((21 + i))
done

# One fleet pass: per-corpus documents plus the summary baseline.
ok_or_diag "$SDCHECKER" fleet "$ROOT" --threads 4 --shards 3 \
  --out-dir "$WORK/out" --json "$WORK/fleet.json"

# 1. Byte parity: fleet output == standalone analyze, per corpus.
for i in 0 1 2 3; do
  ok_or_diag "$SDCHECKER" analyze "$ROOT/corpus$i" \
    --json "$WORK/standalone$i.json"
  cmp "$WORK/out/corpus$i.json" "$WORK/standalone$i.json"
done

# 2. Self-gate: a fleet compared against its own summary has no drift.
ok_or_diag "$SDCHECKER" fleet "$ROOT" --baseline "$WORK/fleet.json"

# 3. Seeded drift: same seeds, heavier cluster shape (more executors,
# 2 GB inputs) shifts every component distribution; gating the original
# fleet against this baseline must exit 4.
DRIFT_ROOT="$WORK/drift"
for i in 0 1 2 3; do
  "$SDCHECKER" simulate "$DRIFT_ROOT/corpus$i" \
    --jobs $((3 + i * 2)) --seed $((21 + i)) \
    --executors 16 --input-mb 2048
done
ok_or_diag "$SDCHECKER" fleet "$DRIFT_ROOT" --json "$WORK/drift.json"
RC=0
"$SDCHECKER" fleet "$ROOT" --baseline "$WORK/drift.json" \
  >"$WORK/gate.out" || RC=$?
if [ "$RC" -ne 4 ]; then
  echo "fleet_smoke: drift gate exited $RC, want 4" >&2
  cat "$WORK/gate.out" >&2
  exit 1
fi
grep -q 'DRIFT' "$WORK/gate.out"

# 4. A malformed baseline is a load error, not a silent pass.
echo '{"fleet":{}}' >"$WORK/bad.json"
RC=0
"$SDCHECKER" fleet "$ROOT" --baseline "$WORK/bad.json" >/dev/null 2>&1 || RC=$?
if [ "$RC" -ne 1 ]; then
  echo "fleet_smoke: malformed baseline exited $RC, want 1" >&2
  exit 1
fi

echo "fleet smoke ok: per-corpus byte parity, self-gate clean," \
  "seeded drift trips exit 4, malformed baseline rejected"
