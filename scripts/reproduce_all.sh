#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, regenerates every paper
# table/figure, and leaves the transcripts in test_output.txt /
# bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    echo "########## $(basename "$b")"
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done. See EXPERIMENTS.md for the paper-vs-measured index."
