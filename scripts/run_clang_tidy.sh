#!/bin/sh
# Runs clang-tidy over the repo's sources (or the files passed as
# arguments) against the curated .clang-tidy config.  Zero-warning
# baseline: any finding is a failure (WarningsAsErrors: '*').
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir] [file...]
#
# The file list is derived by glob from the repo root (not the caller's
# cwd), so sources added after this script was written cannot silently
# escape linting; a src/ TU *missing* from compile_commands.json is a
# hard failure for the same reason — "not built" must never read as
# "lint-clean".
#
# The build dir must contain compile_commands.json (configure with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).  When clang-tidy is not
# installed the script exits 0 with a notice, so developer machines
# without LLVM keep building; CI installs clang-tidy and enforces.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$REPO_ROOT"

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not installed; skipping (CI enforces)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  FILES="$*"
else
  # Every first-party TU (tools/ and tests/ are covered by their own
  # suites; src/ is the zero-warning surface).
  FILES=$(find src -name '*.cpp' | sort)
fi

STATUS=0
for f in $FILES; do
  case "$f" in
    *.cpp) ;;
    *) continue ;;
  esac
  # Every src/ TU must be in the compilation database: a file the build
  # does not know about would otherwise skip linting silently.
  if ! grep -q "$(basename "$f")" "$BUILD_DIR/compile_commands.json"; then
    echo "run_clang_tidy: $f is not in $BUILD_DIR/compile_commands.json" \
         "(new file not added to CMake?)" >&2
    STATUS=1
    continue
  fi
  echo "clang-tidy $f" >&2
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
