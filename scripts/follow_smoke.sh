#!/usr/bin/env bash
# Follow-mode smoke: tail a corpus that is being written incrementally
# (appends cut mid-line, one mid-flight rotation), then require
#   1. the follow snapshot's analysis_json is byte-identical to a batch
#      `sdchecker analyze` of the final directory,
#   2. every --watch ndjson record passes `sdchecker followcheck`,
#   3. the eviction path actually ran (follow.apps_retired > 0).
# Usage: scripts/follow_smoke.sh [BUILD_DIR]  (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SDCHECKER="$BUILD_DIR/tools/sdchecker"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/sdc-follow-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
STAGE="$WORK/stage"
LIVE="$WORK/live"
mkdir -p "$LIVE"

# `follow` and `analyze` exit 3 when the corpus carries diagnostics (the
# rotation handoff is reported as one) — that is expected here.
ok_or_diag() {
  local rc=0
  "$@" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
    echo "follow_smoke: '$*' exited $rc" >&2
    exit 1
  fi
}

"$SDCHECKER" simulate "$STAGE" --jobs 8 --seed 11

# Tail the live directory in the background while the writer below is
# still producing it.
ok_or_diag "$SDCHECKER" follow "$LIVE" --watch --interval 0.2 \
  --poll-ms 50 --exit-quiescent 8 --retire-quiet 2 \
  --json "$WORK/follow.json" >"$WORK/watch.ndjson" &
FOLLOW_PID=$!

# Incremental writer: every stream arrives in byte slices (split is not
# line-aligned, so polls see partial lines); the first stream is rotated
# to `.1` halfway through its life.
ROTATED=""
ROUNDS=6
for f in "$STAGE"/*; do
  name="$(basename "$f")"
  [ -n "$ROTATED" ] || ROTATED="$name"
  split -d -n "$ROUNDS" "$f" "$WORK/slices.$name."
done
for r in $(seq 0 $((ROUNDS - 1))); do
  for f in "$STAGE"/*; do
    name="$(basename "$f")"
    cat "$WORK/slices.$name.0$r" >>"$LIVE/$name"
    if [ "$name" = "$ROTATED" ] && [ "$r" -eq 2 ]; then
      mv "$LIVE/$name" "$LIVE/$name.1"
    fi
  done
  sleep 0.3
done

wait "$FOLLOW_PID" && FOLLOW_RC=0 || FOLLOW_RC=$?
if [ "$FOLLOW_RC" -ne 0 ] && [ "$FOLLOW_RC" -ne 3 ]; then
  echo "follow_smoke: follow exited $FOLLOW_RC" >&2
  exit 1
fi

# 1. Streaming/batch parity at quiescence: byte-identical analysis.
ok_or_diag "$SDCHECKER" analyze "$LIVE" --json "$WORK/batch.json"
cmp "$WORK/follow.json" "$WORK/batch.json"

# 2. Watch stream is schema-valid ndjson.
"$SDCHECKER" followcheck "$WORK/watch.ndjson"

# 3. Terminal applications were retired while following.
grep -q '"follow.apps_retired":[1-9]' "$WORK/watch.ndjson"
# ... and the rotation handoff was observed live.
grep -q '"follow.rotations":[1-9]' "$WORK/watch.ndjson"

echo "follow smoke ok: parity, watch schema, eviction, rotation"
