#!/usr/bin/env bash
# Follow-mode smoke: tail a corpus that is being written incrementally
# (appends cut mid-line, one mid-flight rotation), then require
#   1. the follow snapshot's analysis_json is byte-identical to a batch
#      `sdchecker analyze` of the final directory,
#   2. every --watch ndjson record passes `sdchecker followcheck`,
#   3. the eviction path actually ran (follow.apps_retired > 0),
# then re-follow the finished directory with `--serve` and require
#   4. /metrics passes `promcheck` and carries the delay histograms,
#   5. /analysis is byte-identical to the batch analysis,
#   6. /healthz answers 200 normally and flips to 503 when the poll
#      loop is wedged with --stall-polls-after.
# Usage: scripts/follow_smoke.sh [BUILD_DIR]  (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SDCHECKER="$BUILD_DIR/tools/sdchecker"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/sdc-follow-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
STAGE="$WORK/stage"
LIVE="$WORK/live"
mkdir -p "$LIVE"

# `follow` and `analyze` exit 3 when the corpus carries diagnostics (the
# rotation handoff is reported as one) — that is expected here.
ok_or_diag() {
  local rc=0
  "$@" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
    echo "follow_smoke: '$*' exited $rc" >&2
    exit 1
  fi
}

"$SDCHECKER" simulate "$STAGE" --jobs 8 --seed 11

# Tail the live directory in the background while the writer below is
# still producing it.
ok_or_diag "$SDCHECKER" follow "$LIVE" --watch --interval 0.2 \
  --poll-ms 50 --exit-quiescent 8 --retire-quiet 2 \
  --json "$WORK/follow.json" >"$WORK/watch.ndjson" &
FOLLOW_PID=$!

# Incremental writer: every stream arrives in byte slices (split is not
# line-aligned, so polls see partial lines); the first stream is rotated
# to `.1` halfway through its life.
ROTATED=""
ROUNDS=6
for f in "$STAGE"/*; do
  name="$(basename "$f")"
  [ -n "$ROTATED" ] || ROTATED="$name"
  split -d -n "$ROUNDS" "$f" "$WORK/slices.$name."
done
for r in $(seq 0 $((ROUNDS - 1))); do
  for f in "$STAGE"/*; do
    name="$(basename "$f")"
    cat "$WORK/slices.$name.0$r" >>"$LIVE/$name"
    if [ "$name" = "$ROTATED" ] && [ "$r" -eq 2 ]; then
      mv "$LIVE/$name" "$LIVE/$name.1"
    fi
  done
  sleep 0.3
done

wait "$FOLLOW_PID" && FOLLOW_RC=0 || FOLLOW_RC=$?
if [ "$FOLLOW_RC" -ne 0 ] && [ "$FOLLOW_RC" -ne 3 ]; then
  echo "follow_smoke: follow exited $FOLLOW_RC" >&2
  exit 1
fi

# 1. Streaming/batch parity at quiescence: byte-identical analysis.
ok_or_diag "$SDCHECKER" analyze "$LIVE" --json "$WORK/batch.json"
cmp "$WORK/follow.json" "$WORK/batch.json"

# 2. Watch stream is schema-valid ndjson.
"$SDCHECKER" followcheck "$WORK/watch.ndjson"

# 3. Terminal applications were retired while following.
grep -q '"follow.apps_retired":[1-9]' "$WORK/watch.ndjson"
# ... and the rotation handoff was observed live.
grep -q '"follow.rotations":[1-9]' "$WORK/watch.ndjson"

# --- serve phase -------------------------------------------------------
# Re-follow the (now final) directory with the embedded observability
# server on an ephemeral port.  Without --exit-quiescent the process
# runs until SIGINT, so the endpoints stay scrapeable.
PROMCHECK="$BUILD_DIR/tools/promcheck"

# Start a backgrounded `follow --serve`, wait for the "serving
# http://..." stderr line, and export SERVE_PID / SERVE_PORT.
start_serve() {
  local errfile="$1"
  shift
  "$SDCHECKER" follow "$LIVE" --poll-ms 50 "$@" \
    >/dev/null 2>"$errfile" &
  SERVE_PID=$!
  SERVE_PORT=""
  for _ in $(seq 1 100); do
    SERVE_PORT="$(sed -n \
      's|^serving http://127\.0\.0\.1:\([0-9]*\)/$|\1|p' "$errfile")"
    [ -z "$SERVE_PORT" ] || return 0
    sleep 0.1
  done
  echo "follow_smoke: no 'serving http://...' line in $errfile" >&2
  exit 1
}

# http_get PATH OUTFILE -> prints the status code ("000" on refusal).
http_get() {
  curl -s -o "$2" -w '%{http_code}' --max-time 5 \
    "http://127.0.0.1:$SERVE_PORT$1" || true
}

stop_serve() {
  kill -INT "$SERVE_PID"
  wait "$SERVE_PID" && local rc=0 || local rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
    echo "follow_smoke: follow --serve exited $rc" >&2
    exit 1
  fi
}

start_serve "$WORK/serve.err" --serve 127.0.0.1:0

# The publisher starts with an empty placeholder document; wait for the
# first non-quiescent poll to publish the real analysis.
for _ in $(seq 1 100); do
  code="$(http_get /analysis "$WORK/serve.analysis.json")"
  if [ "$code" = "200" ] &&
     [ "$(cat "$WORK/serve.analysis.json")" != "{}" ]; then
    break
  fi
  sleep 0.1
done

# 4. /metrics is a valid exposition carrying the catalog + delay series.
test "$(http_get /metrics "$WORK/serve.metrics")" = "200"
"$PROMCHECK" "$WORK/serve.metrics"
grep -q 'sdc_delay_total_bucket{le="+Inf"}' "$WORK/serve.metrics"
grep -q '^obs_http_requests ' "$WORK/serve.metrics"

# 5. The live analysis document equals the batch one, byte for byte.
cmp "$WORK/serve.analysis.json" "$WORK/batch.json"

# /healthz is green while polls are fresh; /varz is the raw snapshot;
# unknown paths are 404.
test "$(http_get /healthz "$WORK/serve.healthz")" = "200"
grep -q '"status":"ok"' "$WORK/serve.healthz"
test "$(http_get /varz "$WORK/serve.varz")" = "200"
grep -q '"mine.lines"' "$WORK/serve.varz"
test "$(http_get /bogus /dev/null)" = "404"
stop_serve

# 6. Wedge the poll loop after two polls: /healthz must flip to 503
# once the poll age passes the (tiny) stall threshold.
start_serve "$WORK/stall.err" --serve 127.0.0.1:0 \
  --stall-polls-after 2 --serve-stall-ms 200
STALLED=""
for _ in $(seq 1 100); do
  code="$(http_get /healthz "$WORK/stall.healthz")"
  if [ "$code" = "503" ]; then
    STALLED=yes
    break
  fi
  sleep 0.1
done
test -n "$STALLED"
grep -q '"status":"stalled"' "$WORK/stall.healthz"
stop_serve

echo "follow smoke ok: parity, watch schema, eviction, rotation," \
  "serve endpoints, prom exposition, stall 503"
